(* Unit tests for Mcr_trace: object-graph analysis (precise + conservative)
   and state transfer, observed through the Listing 1 image. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Ty = Mcr_types.Ty
module Symtab = Mcr_types.Symtab
module Objgraph = Mcr_trace.Objgraph
module Transfer = Mcr_trace.Transfer
module Manager = Mcr_core.Manager
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace
module Access = Mcr_types.Access

let boot ?(requests = 3) () =
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  for _ = 1 to requests do
    let p =
      K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"c" ~entry:"main"
        ~main:(fun _ ->
          let rec connect n =
            match K.syscall (S.Connect { port = Listing1.port }) with
            | S.Ok_fd fd -> Some fd
            | S.Err S.ECONNREFUSED when n > 0 ->
                ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
                connect (n - 1)
            | _ -> None
          in
          match connect 100 with
          | Some fd ->
              ignore (K.syscall (S.Write { fd; data = "GET /" }));
              ignore (K.syscall (S.Read { fd; max = 256; nonblock = false }))
          | None -> ())
        ()
    in
    ignore
      (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> not (K.alive p)))
  done;
  (kernel, m)

let origin_name (o : Objgraph.obj) =
  match o.Objgraph.origin with
  | Objgraph.O_static s -> "static:" ^ s
  | O_string _ -> "string"
  | O_heap -> "heap"
  | O_lib -> "lib"
  | O_pool_obj p -> "poolobj:" ^ p
  | O_pool_chunk p -> "chunk:" ^ p
  | O_slab_chunk s -> "slab:" ^ s
  | O_stack k -> "stack:" ^ k
  | O_pinned -> "pinned"

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_roots_are_globals () =
  let _, m = boot () in
  let a = Objgraph.analyze (Manager.root_image m) in
  let root_names = List.map origin_name a.Objgraph.roots in
  List.iter
    (fun g ->
      Alcotest.(check bool) (g ^ " is a root") true (List.mem ("static:" ^ g) root_names))
    [ "b"; "list"; "conf"; "count" ]

let test_precise_traversal_reaches_heap () =
  let _, m = boot ~requests:3 () in
  let a = Objgraph.analyze (Manager.root_image m) in
  (* conf -> conf_s; list -> 3 nodes; banner via conf *)
  let reachable_heap =
    List.filter (fun (o : Objgraph.obj) -> o.Objgraph.origin = Objgraph.O_heap)
      (Objgraph.reachable_objects a)
  in
  Alcotest.(check bool) "at least conf + banner + hidden + 3 nodes" true
    (List.length reachable_heap >= 6);
  let nodes =
    List.filter (fun (o : Objgraph.obj) -> o.Objgraph.ty_name = Some "l_t") reachable_heap
  in
  Alcotest.(check int) "three list nodes reached" 3 (List.length nodes)

let test_hidden_pointer_pins_target () =
  let _, m = boot () in
  let a = Objgraph.analyze (Manager.root_image m) in
  let hidden =
    List.find
      (fun (o : Objgraph.obj) -> o.Objgraph.ty_name = Some "hidden_s")
      (Objgraph.reachable_objects a)
  in
  Alcotest.(check bool) "hidden struct immutable" true hidden.Objgraph.immutable_;
  Alcotest.(check bool) "hidden struct nonupdatable" true hidden.Objgraph.nonupdatable;
  (* precisely traced nodes are NOT pinned *)
  let node =
    List.find
      (fun (o : Objgraph.obj) -> o.Objgraph.ty_name = Some "l_t")
      (Objgraph.reachable_objects a)
  in
  Alcotest.(check bool) "list node relocatable" false node.Objgraph.immutable_

let test_likely_and_precise_stats () =
  let _, m = boot () in
  let a = Objgraph.analyze (Manager.root_image m) in
  let s = a.Objgraph.stats in
  Alcotest.(check bool) "precise pointers counted" true (s.Objgraph.precise.Objgraph.ptr > 0);
  (* b holds the hidden pointer: at least one likely pointer from a static
     source into the heap *)
  Alcotest.(check bool) "likely pointers counted" true (s.Objgraph.likely.Objgraph.ptr > 0);
  Alcotest.(check bool) "likely src static" true (s.Objgraph.likely.Objgraph.src_static > 0);
  Alcotest.(check bool) "likely targ dynamic" true (s.Objgraph.likely.Objgraph.targ_dynamic > 0)

let test_resolve_interior_pointer () =
  let _, m = boot () in
  let image = Manager.root_image m in
  let a = Objgraph.analyze image in
  let node =
    List.find
      (fun (o : Objgraph.obj) -> o.Objgraph.ty_name = Some "l_t")
      (Objgraph.reachable_objects a)
  in
  (match Objgraph.resolve a (Mcr_vmem.Addr.add_words node.Objgraph.addr 1) with
  | Some (o, off) ->
      Alcotest.(check int) "same object" node.Objgraph.id o.Objgraph.id;
      Alcotest.(check int) "word offset" 1 off
  | None -> Alcotest.fail "interior pointer did not resolve");
  Alcotest.(check bool) "unmapped does not resolve" true (Objgraph.resolve a 0x99 = None)

let test_obj_handler_reveals_hidden_pointer () =
  (* the MCR_ADD_OBJ_HANDLER annotation: declaring b's real layout turns the
     hidden pointer precise and unpins its target *)
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let v1 = Listing1.v1 () in
  let annotated =
    {
      v1 with
      P.annotations =
        [
          P.Obj_handler
            {
              symbol = "b";
              reveal =
                Ty.Struct
                  {
                    sname = "b_revealed";
                    fields = [ ("hidden", Ty.Ptr (Ty.Named "hidden_s")); ("meta", Ty.Word) ];
                  };
            };
        ];
    }
  in
  let m = Manager.launch kernel annotated in
  assert (Manager.wait_startup m ());
  let a = Objgraph.analyze (Manager.root_image m) in
  let hidden =
    List.find
      (fun (o : Objgraph.obj) -> o.Objgraph.ty_name = Some "hidden_s")
      (Objgraph.reachable_objects a)
  in
  Alcotest.(check bool) "hidden target no longer pinned" false hidden.Objgraph.immutable_

let test_dirty_tracking_granularity () =
  let _, m = boot ~requests:0 () in
  let a = Objgraph.analyze (Manager.root_image m) in
  (* with no post-startup activity, nothing reachable is dirty *)
  Alcotest.(check (list string)) "all clean after startup" []
    (List.map origin_name (Objgraph.dirty_objects a))

let test_encoded_pointer_traced_under_regions () =
  (* under region instrumentation, connection objects are typed, so their
     Encoded_ptr field is decoded and its target (the request object)
     reached precisely — the nginx 22-LOC annotation at work *)
  let kernel = K.create () in
  let m =
    Mcr_workloads.Testbed.launch
      ~instr:(Mcr_program.Instr.with_regions Mcr_program.Instr.full)
      kernel Mcr_workloads.Testbed.Nginx
  in
  let holders = Mcr_workloads.Testbed.open_holders kernel Mcr_workloads.Testbed.Nginx ~n:2 in
  let worker =
    List.find (fun (im : P.image) -> K.parent_pid im.P.i_proc <> 0) (Manager.images m)
  in
  let a = Objgraph.analyze worker in
  let conns =
    List.filter
      (fun (o : Objgraph.obj) -> o.Objgraph.ty_name = Some "ngx_connection_t")
      (Objgraph.reachable_objects a)
  in
  Alcotest.(check bool) "held connections reached as typed pool objects" true
    (List.length conns >= 2);
  let reqs =
    List.filter
      (fun (o : Objgraph.obj) -> o.Objgraph.ty_name = Some "ngx_request_t")
      (Objgraph.reachable_objects a)
  in
  Alcotest.(check bool) "encoded targets (requests) reached" true (List.length reqs >= 2);
  List.iter
    (fun (o : Objgraph.obj) ->
      Alcotest.(check bool) "precisely traced, not pinned" false o.Objgraph.immutable_)
    reqs;
  Mcr_workloads.Holders.close_all holders

let test_cost_accounted () =
  let _, m = boot () in
  let a = Objgraph.analyze (Manager.root_image m) in
  Alcotest.(check bool) "analysis cost positive" true (a.Objgraph.cost_ns > 0)

(* ------------------------------------------------------------------ *)
(* Transfer *)

let run_update ?(variant = `Normal) ?(requests = 3) () =
  let kernel, m = boot ~requests () in
  let m2, report = Manager.update m (Listing1.v2 ~variant ()) in
  (kernel, m2, report)

let test_transfer_outcome_accounting () =
  let _, _, report = run_update () in
  Alcotest.(check bool) "ok" true report.Manager.success;
  match report.Manager.transfers with
  | [ (_, o) ] ->
      Alcotest.(check bool) "objects copied" true (o.Transfer.transferred_objects > 0);
      Alcotest.(check bool) "words copied" true (o.Transfer.transferred_words > 0);
      Alcotest.(check bool) "hidden struct pinned in place" true
        (o.Transfer.immutable_remapped >= 1);
      Alcotest.(check bool) "list nodes freshly reallocated" true
        (o.Transfer.fresh_allocations >= 3);
      Alcotest.(check bool) "type transformations applied" true (o.Transfer.type_transformed >= 3);
      Alcotest.(check int) "no dangling pointers" 0 o.Transfer.dangling_zeroed
  | l -> Alcotest.failf "expected one pair, got %d" (List.length l)

let test_transfer_skips_clean_startup_state () =
  (* with no post-startup writes everything is clean, so mutable
     reinitialization's own state stands and transfer skips it *)
  let _, _, report = run_update ~requests:0 () in
  Alcotest.(check bool) "ok" true report.Manager.success;
  match report.Manager.transfers with
  | [ (_, o) ] ->
      Alcotest.(check bool) "clean startup state skipped" true (o.Transfer.skipped_clean > 0)
  | _ -> Alcotest.fail "expected one pair"

let test_transfer_pins_preserve_content () =
  (* the hidden structure is remapped at its old address with its content *)
  let _, m2, report = run_update () in
  Alcotest.(check bool) "ok" true report.Manager.success;
  let image = Manager.root_image m2 in
  let aspace = image.P.i_aspace in
  (* find it through the (transferred) opaque buffer b *)
  let b = (Symtab.lookup image.P.i_symtab "b").Symtab.addr in
  let hidden_addr = Aspace.read_word aspace b in
  Alcotest.(check bool) "b still holds the old address" true (hidden_addr > 0);
  Alcotest.(check int) "field a preserved" 11 (Aspace.read_word aspace hidden_addr);
  Alcotest.(check int) "field b preserved" 22
    (Aspace.read_word aspace (Mcr_vmem.Addr.add_words hidden_addr 1))

let test_transfer_handler_used () =
  (* the user transfer handler initializes the new field to 42 *)
  let _, m2, report = run_update ~variant:`With_handler () in
  Alcotest.(check bool) "ok" true report.Manager.success;
  let image = Manager.root_image m2 in
  let aspace = image.P.i_aspace in
  let env = image.P.i_version.P.tyenv in
  let head = (Symtab.lookup image.P.i_symtab "list").Symtab.addr in
  let field base name = Access.read_field aspace env ~base (Ty.Named "l_t") name in
  let rec collect addr acc =
    if addr = 0 then List.rev acc else collect (field addr "next") (field addr "new" :: acc)
  in
  Alcotest.(check (list int)) "handler set the new field" [ 42; 42; 42 ]
    (collect (field head "next") [])

let test_transfer_full_vs_dirty () =
  let kernel, m = boot () in
  ignore kernel;
  let _, report =
    Manager.update m
      ~policy:(Mcr_core.Policy.with_dirty_only false Mcr_core.Policy.default)
      (Listing1.v2 ())
  in
  Alcotest.(check bool) "full transfer ok" true report.Manager.success;
  match report.Manager.transfers with
  | [ (_, o) ] -> Alcotest.(check int) "nothing skipped" 0 o.Transfer.skipped_clean
  | _ -> Alcotest.fail "expected one pair"

let test_interior_pointer_follows_reordered_field () =
  (* an interior pointer to a field whose offset changes when the update
     reorders the struct must land on the same field in the new layout
     (the paper's moving-collector interior-pointer support) *)
  let mk tag reorder =
    let tyenv = Ty.env_create () in
    let fields = [ ("a", Ty.Int); ("b", Ty.Int); ("c", Ty.Int) ] in
    Ty.env_add tyenv "rec_t"
      (Ty.Struct { sname = "rec_t"; fields = (if reorder then List.rev fields else fields) });
    Mcr_program.Progdef.make_version ~prog:"interior" ~version_tag:tag
      ~layout_bias:(if reorder then 512 else 0)
      ~tyenv
      ~globals:[ ("rec_ptr", Ty.Ptr (Ty.Named "rec_t")); ("b_ptr", Ty.Ptr Ty.Int) ]
      ~funcs:[ "main" ] ~strings:[]
      ~entries:
        [
          ( "main",
            fun t ->
              Mcr_program.Api.fn t "main" @@ fun () ->
              let r = Mcr_program.Api.malloc t ~site:"main:rec" "rec_t" in
              Mcr_program.Api.store t (Mcr_program.Api.global t "rec_ptr") r;
              Mcr_program.Api.loop t "main_loop" (fun () ->
                  (match
                     Mcr_program.Api.blocking t ~qpoint:"wait"
                       (S.Sem_wait { name = "interior.tick"; timeout_ns = None })
                   with
                  | S.Ok_unit ->
                      (* post-startup: write fields and take an interior
                         pointer to b *)
                      Mcr_program.Api.store_field t r "rec_t" "a" 111;
                      Mcr_program.Api.store_field t r "rec_t" "b" 222;
                      Mcr_program.Api.store_field t r "rec_t" "c" 333;
                      Mcr_program.Api.store t
                        (Mcr_program.Api.global t "b_ptr")
                        (Mcr_program.Api.field_addr t r "rec_t" "b")
                  | _ -> ());
                  true) );
        ]
      ~qpoints:[ ("wait", "sem_wait") ] ()
  in
  let kernel = K.create () in
  let m = Manager.launch kernel (mk "1" false) in
  assert (Manager.wait_startup m ());
  K.post_semaphore kernel "interior.tick";
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 1_000_000_000) (fun () -> false));
  let m2, report = Manager.update m (mk "2" true) in
  Alcotest.(check bool) "reordering update ok" true report.Manager.success;
  let image = Manager.root_image m2 in
  let aspace = image.P.i_aspace in
  let b_ptr =
    Aspace.read_word aspace (Symtab.lookup image.P.i_symtab "b_ptr").Symtab.addr
  in
  Alcotest.(check int) "interior pointer still reads field b" 222
    (Aspace.read_word aspace b_ptr);
  (* and it points inside the transferred record at b's NEW offset *)
  let rec_ptr =
    Aspace.read_word aspace (Symtab.lookup image.P.i_symtab "rec_ptr").Symtab.addr
  in
  let env2 = image.P.i_version.P.tyenv in
  Alcotest.(check int) "at the reordered offset"
    (Access.field_addr env2 ~base:rec_ptr (Ty.Named "rec_t") "b")
    b_ptr

let test_string_literals_remap () =
  (* dirty state containing pointers to interned literals gets them
     re-interned in the new version's rodata *)
  let _, m2, report = run_update () in
  Alcotest.(check bool) "ok" true report.Manager.success;
  let image = Manager.root_image m2 in
  (* the new rodata contains the same literals at the new addresses *)
  let a = Symtab.string_addr image.P.i_symtab "welcome" in
  Alcotest.(check string) "literal readable" "welcome"
    (Access.read_string image.P.i_aspace a)

let () =
  Alcotest.run "mcr_trace"
    [
      ( "analysis",
        [
          Alcotest.test_case "roots are globals" `Quick test_roots_are_globals;
          Alcotest.test_case "precise traversal" `Quick test_precise_traversal_reaches_heap;
          Alcotest.test_case "hidden pointer pins" `Quick test_hidden_pointer_pins_target;
          Alcotest.test_case "statistics" `Quick test_likely_and_precise_stats;
          Alcotest.test_case "interior resolution" `Quick test_resolve_interior_pointer;
          Alcotest.test_case "obj handler reveals" `Quick test_obj_handler_reveals_hidden_pointer;
          Alcotest.test_case "dirty granularity" `Quick test_dirty_tracking_granularity;
          Alcotest.test_case "cost accounting" `Quick test_cost_accounted;
          Alcotest.test_case "encoded ptr under regions" `Quick
            test_encoded_pointer_traced_under_regions;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "outcome accounting" `Quick test_transfer_outcome_accounting;
          Alcotest.test_case "clean state skipped" `Quick test_transfer_skips_clean_startup_state;
          Alcotest.test_case "pins preserve content" `Quick test_transfer_pins_preserve_content;
          Alcotest.test_case "user transfer handler" `Quick test_transfer_handler_used;
          Alcotest.test_case "full vs dirty" `Quick test_transfer_full_vs_dirty;
          Alcotest.test_case "string literals remap" `Quick test_string_literals_remap;
          Alcotest.test_case "interior ptr follows reorder" `Quick
            test_interior_pointer_follows_reordered_field;
        ] );
    ]
