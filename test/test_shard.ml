(* Sharded parallel state transfer, proved four ways: shard-plan algebra
   (the partition is exact, deterministic, balanced enough to have a
   critical path no worse than the sequential walk), image identity (every
   worker count commits the byte-identical image and reports identical
   conflict/rollback behaviour), the control surface (the Policy builder
   and the WORKERS ctl command), and the fault property (mid-transfer
   faults under workers > 1 still satisfy the rollback guarantee). *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Ctl = Mcr_core.Ctl
module Fault = Mcr_fault.Fault
module Metrics = Mcr_obs.Metrics
module Objgraph = Mcr_trace.Objgraph
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr

let worker_counts = [ 1; 2; 3; 8 ]

let drive kernel pred =
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 120_000_000_000) pred)

let rpc kernel ~port data =
  let reply = ref None in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"rpc" ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | None -> reply := Some "NOCONN"
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data }));
            match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD"))
      ()
  in
  drive kernel (fun () -> not (K.alive p));
  Option.value !reply ~default:"NONE"

let launch_listing1 kernel =
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  ignore (rpc kernel ~port:Listing1.port "GET /");
  m

(* Byte-identity digest of an address space (same fold as test_precopy). *)
let aspace_digest asp =
  List.fold_left
    (fun h (r : Mcr_vmem.Region.t) ->
      let words = r.Mcr_vmem.Region.size / Addr.word_size in
      let rec go h i =
        if i >= words then h
        else
          let a = Addr.add_words r.Mcr_vmem.Region.base i in
          let h =
            if Aspace.is_mapped_word asp a then (h * 1_000_003) + Aspace.read_word asp a
            else h * 31
          in
          go h (i + 1)
      in
      go h 0)
    17 (Aspace.regions asp)

let program_digest m =
  List.map (fun (im : P.image) -> aspace_digest im.P.i_aspace) (Manager.images m)

let alive_pids kernel =
  List.filter_map (fun p -> if K.alive p then Some (K.pid p) else None) (K.procs kernel)
  |> List.sort compare

(* A quiescent analysis with a meaningful object graph to shard. *)
let listing1_analysis () =
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  for _ = 1 to 8 do
    ignore (rpc kernel ~port:Listing1.port "GET /")
  done;
  Objgraph.analyze (Manager.root_image m)

(* ------------------------------------------------------------------ *)
(* Shard-plan algebra *)

let test_plan_partitions_exactly () =
  let a = listing1_analysis () in
  List.iter
    (fun w ->
      let plan = Objgraph.shard a ~workers:w in
      let label fmt = Printf.sprintf "W=%d: %s" w fmt in
      Alcotest.(check bool) (label "effective workers in range") true
        (plan.Objgraph.sp_workers >= 1 && plan.Objgraph.sp_workers <= w);
      Alcotest.(check int) (label "words array sized") plan.Objgraph.sp_workers
        (Array.length plan.Objgraph.sp_words);
      Alcotest.(check int) (label "object counts partition the reachable set")
        a.Objgraph.reachable_count
        (Array.fold_left ( + ) 0 plan.Objgraph.sp_objects);
      Alcotest.(check int) (label "word counts partition the reachable words")
        a.Objgraph.reachable_words
        (Array.fold_left ( + ) 0 plan.Objgraph.sp_words);
      Alcotest.(check int) (label "tracing charges partition cost_ns")
        a.Objgraph.cost_ns
        (Array.fold_left ( + ) 0 plan.Objgraph.sp_trace_ns);
      Array.iter
        (fun n -> Alcotest.(check bool) (label "no empty shard") true (n > 0))
        plan.Objgraph.sp_objects;
      (* every reachable object is assigned to a valid shard, in address
         order (contiguous ranges); unreachable objects are unassigned *)
      let last = ref (-1) in
      Array.iter
        (fun (o : Objgraph.obj) ->
          let s = plan.Objgraph.sp_shard_of.(o.Objgraph.id) in
          if o.Objgraph.reachable then begin
            Alcotest.(check bool) (label "assigned") true
              (s >= 0 && s < plan.Objgraph.sp_workers);
            Alcotest.(check bool) (label "address-contiguous") true (s >= !last);
            last := s
          end
          else Alcotest.(check int) (label "unreachable unassigned") (-1) s)
        a.Objgraph.objects)
    [ 1; 2; 3; 5; 8; 64 ]

let test_plan_deterministic () =
  let a = listing1_analysis () in
  List.iter
    (fun w ->
      let p1 = Objgraph.shard a ~workers:w in
      let p2 = Objgraph.shard a ~workers:w in
      Alcotest.(check (array int))
        (Printf.sprintf "W=%d: same assignment" w)
        p1.Objgraph.sp_shard_of p2.Objgraph.sp_shard_of;
      Alcotest.(check (array int))
        (Printf.sprintf "W=%d: same words" w)
        p1.Objgraph.sp_words p2.Objgraph.sp_words)
    worker_counts

let test_critical_path_bounds () =
  let a = listing1_analysis () in
  Alcotest.(check int) "W=1 critical path is the sequential cost" a.Objgraph.cost_ns
    (Objgraph.trace_critical_ns a ~workers:1);
  let prev = ref a.Objgraph.cost_ns in
  List.iter
    (fun w ->
      let c = Objgraph.trace_critical_ns a ~workers:w in
      Alcotest.(check bool)
        (Printf.sprintf "W=%d: critical path <= sequential" w)
        true (c <= a.Objgraph.cost_ns);
      Alcotest.(check bool)
        (Printf.sprintf "W=%d: critical path >= fair share" w)
        true
        (c * w >= a.Objgraph.cost_ns);
      Alcotest.(check bool)
        (Printf.sprintf "W=%d: monotone non-increasing" w)
        true (c <= !prev);
      prev := c)
    [ 2; 3; 4; 5; 6; 7; 8 ]

let test_invalid_workers_rejected () =
  let a = listing1_analysis () in
  Alcotest.check_raises "shard rejects workers = 0"
    (Invalid_argument "Objgraph.shard: workers must be >= 1") (fun () ->
      ignore (Objgraph.shard a ~workers:0))

(* ------------------------------------------------------------------ *)
(* Control surface *)

let test_policy_builder () =
  Alcotest.(check int) "default is sequential" 1 Policy.default.Policy.transfer_workers;
  let p = Policy.with_transfer_workers 4 Policy.default in
  Alcotest.(check int) "builder sets workers" 4 p.Policy.transfer_workers;
  Alcotest.check_raises "workers = 0 rejected"
    (Invalid_argument "Policy.with_transfer_workers: workers must be >= 1") (fun () ->
      ignore (Policy.with_transfer_workers 0 Policy.default))

let test_ctl_workers_knob () =
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let path = Manager.ctl_path m in
  let reply = ref None in
  let ask f =
    reply := None;
    f ();
    drive kernel (fun () -> !reply <> None)
  in
  ask (fun () ->
      Ctl.request_workers kernel ~path ~workers:3 ~on_reply:(fun r -> reply := Some r));
  Alcotest.(check (option string)) "WORKERS 3 acknowledged" (Some "OK") !reply;
  Alcotest.(check int) "policy updated" 3 (Manager.policy m).Policy.transfer_workers;
  ask (fun () ->
      Ctl.request_workers kernel ~path ~workers:0 ~on_reply:(fun r -> reply := Some r));
  Alcotest.(check (option string)) "WORKERS 0 refused" (Some "ERR usage: WORKERS <count>")
    !reply;
  Alcotest.(check int) "policy unchanged on refusal" 3
    (Manager.policy m).Policy.transfer_workers;
  ask (fun () ->
      Ctl.request kernel ~path ~command:"WORKERS" ~on_reply:(fun r -> reply := Some r));
  Alcotest.(check (option string)) "bare WORKERS refused"
    (Some "ERR usage: WORKERS <count>") !reply;
  (* the knob drives the next update: commits and reports the pool size *)
  let _, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update with workers=3 committed" true report.Manager.success;
  Alcotest.(check (option int)) "workers gauge exported" (Some 3)
    (Metrics.find_gauge report.Manager.metrics "mcr_transfer_workers")

(* ------------------------------------------------------------------ *)
(* Identity: every worker count commits the same bytes *)

let test_four_servers_byte_identical_any_workers () =
  List.iter
    (fun server ->
      let run w =
        let kernel = K.create () in
        let m = Testbed.launch kernel server in
        let holders = Testbed.open_holders kernel server ~n:4 in
        let policy = Policy.with_transfer_workers w Policy.default in
        let m2, report = Manager.update m ~policy (Testbed.final_version server) in
        Alcotest.(check bool)
          (Printf.sprintf "%s W=%d: committed" (Testbed.name server) w)
          true report.Manager.success;
        Holders.close_all holders;
        program_digest m2
      in
      let reference = run 1 in
      List.iter
        (fun w ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s W=%d: image byte-identical to W=1" (Testbed.name server) w)
            reference (run w))
        (List.filter (fun w -> w <> 1) worker_counts))
    Testbed.all

let test_rollback_identical_any_workers () =
  (* a conflicting update (httpd unprepared) must roll back with the same
     reason and conflict rendering for every worker count *)
  let run w =
    let kernel = K.create () in
    let m = Testbed.launch kernel Testbed.Httpd in
    let policy = Policy.with_transfer_workers w Policy.default in
    let m2, report = Manager.update m ~policy (Mcr_servers.Httpd_sim.unprepared ()) in
    Alcotest.(check bool)
      (Printf.sprintf "W=%d: rolled back" w)
      false report.Manager.success;
    let rendering =
      ( Option.map Mcr_error.to_string report.Manager.failure,
        List.map
          (Format.asprintf "%a" Mcr_replay.Replayer.pp_conflict)
          report.Manager.replay_conflicts,
        List.map
          (Format.asprintf "%a" Mcr_trace.Transfer.pp_conflict)
          report.Manager.transfer_conflicts )
    in
    (rendering, program_digest m2)
  in
  let reference = run 1 in
  List.iter
    (fun w ->
      let r = run w in
      Alcotest.(check bool)
        (Printf.sprintf "W=%d: identical rollback" w)
        true (r = reference))
    (List.filter (fun w -> w <> 1) worker_counts)

let prop_byte_identity_random_workers =
  QCheck.Test.make ~name:"any worker count commits the single-worker image" ~count:30
    QCheck.(pair (int_range 2 16) (int_range 0 5))
    (fun (w, extra) ->
      let run workers =
        let kernel = K.create () in
        let m = launch_listing1 kernel in
        for _ = 1 to extra do
          ignore (rpc kernel ~port:Listing1.port "GET /")
        done;
        let policy = Policy.with_transfer_workers workers Policy.default in
        let m2, report = Manager.update m ~policy (Listing1.v2 ()) in
        (report.Manager.success, program_digest m2)
      in
      let ok1, d1 = run 1 and okw, dw = run w in
      if not (ok1 && okw && d1 = dw) then
        QCheck.Test.fail_reportf "w=%d extra=%d ok1=%b okw=%b identical=%b" w extra ok1 okw
          (d1 = dw)
      else true)

(* ------------------------------------------------------------------ *)
(* Faults mid-transfer with workers > 1 keep the rollback guarantee *)

let prop_rollback_guarantee_with_workers =
  let servers = Array.of_list Testbed.all in
  QCheck.Test.make ~name:"faults under workers > 1 never break the old version" ~count:40
    QCheck.(triple (int_range 0 (Array.length servers - 1)) (int_range 0 1_000_000)
              (int_range 2 8))
    (fun (si, seed, w) ->
      let server = servers.(si) in
      let kernel = K.create () in
      let m = Testbed.launch kernel server in
      let old_root = Manager.root_proc m in
      let old_image = Manager.root_image m in
      let pre_digest = aspace_digest old_image.P.i_aspace in
      let pre_pids = alive_pids kernel in
      let pre_fds = K.fds old_root in
      let fault = Fault.of_seed seed in
      let policy =
        Policy.with_transfer_workers w Policy.default
        |> Policy.with_deadlines ~quiesce_ns:(Some 3_000_000_000)
             ~update_ns:(Some 30_000_000_000)
      in
      let m2, report = Manager.update m ~policy ~fault (Testbed.final_version server) in
      if report.Manager.success then K.alive (Manager.root_proc m2)
      else begin
        let ok_alive = K.alive old_root in
        let ok_digest = aspace_digest old_image.P.i_aspace = pre_digest in
        let ok_fds = K.fds old_root = pre_fds in
        let post_pids = alive_pids kernel in
        let ok_no_leak = List.for_all (fun p -> List.mem p pre_pids) post_pids in
        let _, clean = Manager.update m2 (Testbed.final_version server) in
        if not (ok_alive && ok_digest && ok_fds && ok_no_leak && clean.Manager.success)
        then
          QCheck.Test.fail_reportf
            "server=%s seed=%d w=%d reason=%s alive=%b digest=%b fds=%b leak=%b clean=%b"
            (Testbed.name server) seed w
            (Option.fold ~none:"<none>" ~some:Mcr_error.to_string report.Manager.failure)
            ok_alive ok_digest ok_fds (not ok_no_leak) clean.Manager.success
        else true
      end)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_shard"
    [
      ( "plan",
        [
          Alcotest.test_case "partitions exactly" `Quick test_plan_partitions_exactly;
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "critical-path bounds" `Quick test_critical_path_bounds;
          Alcotest.test_case "invalid workers rejected" `Quick test_invalid_workers_rejected;
        ] );
      ( "api",
        [
          Alcotest.test_case "policy builder" `Quick test_policy_builder;
          Alcotest.test_case "ctl workers knob" `Quick test_ctl_workers_knob;
        ] );
      ( "identity",
        [
          Alcotest.test_case "four servers byte-identical for every W" `Slow
            test_four_servers_byte_identical_any_workers;
          Alcotest.test_case "rollback identical for every W" `Slow
            test_rollback_identical_any_workers;
          qt prop_byte_identity_random_workers;
        ] );
      ("faults", [ qt prop_rollback_guarantee_with_workers ]);
    ]
