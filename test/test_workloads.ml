(* Tests for the workload generators and the testbed against each server,
   including Figure 3 mechanics (update under held connections). *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module W = Mcr_workloads
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders

let fresh_with server ?instr ?version () =
  let kernel = K.create () in
  let m = Testbed.launch ?instr ?version kernel server in
  (kernel, m)

let test_http_bench_completes () =
  let kernel, _ = fresh_with Testbed.Nginx () in
  let r = W.Http_bench.run kernel ~port:(Testbed.port Testbed.Nginx) ~requests:50 ~path:"/index.html" () in
  Alcotest.(check int) "all requests ok" 50 r.W.Bench_result.requests;
  Alcotest.(check int) "no errors" 0 r.W.Bench_result.errors;
  Alcotest.(check bool) "bytes delivered" true (r.W.Bench_result.bytes > 50 * 1000);
  Alcotest.(check bool) "time elapsed" true (r.W.Bench_result.elapsed_ns > 0)

let test_httpd_bench_completes () =
  let kernel, _ = fresh_with Testbed.Httpd () in
  let r = W.Http_bench.run kernel ~port:(Testbed.port Testbed.Httpd) ~requests:40 ~path:"/index.html" () in
  Alcotest.(check int) "all ok" 40 r.W.Bench_result.requests;
  Alcotest.(check int) "no errors" 0 r.W.Bench_result.errors

let test_ftp_bench_completes () =
  let kernel, _ = fresh_with Testbed.Vsftpd () in
  let r = W.Ftp_bench.run kernel ~port:(Testbed.port Testbed.Vsftpd) ~users:6 ~file:"big.bin" () in
  Alcotest.(check int) "all retrievals ok" 6 r.W.Bench_result.requests;
  Alcotest.(check bool) "1MB each" true (r.W.Bench_result.bytes >= 6 * (1 lsl 20))

let test_ssh_bench_completes () =
  let kernel, _ = fresh_with Testbed.Sshd () in
  let r = W.Ssh_bench.run kernel ~port:(Testbed.port Testbed.Sshd) ~sessions:4 ~commands:3 () in
  Alcotest.(check int) "all commands ok" 12 r.W.Bench_result.requests;
  Alcotest.(check int) "no errors" 0 r.W.Bench_result.errors

let test_holders_lifecycle server =
  let kernel, _ = fresh_with server () in
  let h = Testbed.open_holders kernel server ~n:5 in
  Alcotest.(check int) "all connected" 5 (Holders.connected h);
  Holders.close_all h;
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> Holders.all_done h));
  Alcotest.(check bool) "all done" true (Holders.all_done h)

let test_update_under_held_connections server =
  let kernel, m = fresh_with server () in
  ignore (Testbed.benchmark kernel server ~scale:10_000 ());
  let h = Testbed.open_holders kernel server ~n:8 in
  let m2, report = Manager.update m (Testbed.final_version server) in
  Alcotest.(check bool)
    (Testbed.name server ^ " update ok under held connections")
    true report.Manager.success;
  Alcotest.(check bool) "state transfer measured" true (report.Manager.state_transfer_ns > 0);
  Holders.close_all h;
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 120_000_000_000) (fun () -> Holders.all_done h));
  Alcotest.(check bool) "holders complete on new version" true (Holders.all_done h);
  ignore m2

let test_profiling_workload_runs server =
  let kernel = K.create () in
  let profiler = Mcr_quiesce.Profiler.create kernel in
  Mcr_quiesce.Profiler.set_filter profiler (fun th ->
      K.thread_name th <> "mcr-ctl"
      && Mcr_program.Progdef.image_of_proc (K.thread_proc th) <> None);
  Mcr_quiesce.Profiler.attach profiler;
  let _m = Testbed.launch ~instr:Mcr_program.Instr.baseline ~profiler kernel server in
  let holders = Testbed.profiling_workload kernel server in
  Mcr_quiesce.Profiler.detach profiler;
  Holders.close_all holders;
  let report = Mcr_quiesce.Profiler.report profiler in
  Alcotest.(check bool)
    (Testbed.name server ^ " finds quiescent points")
    true
    (report.Mcr_quiesce.Profiler.quiescent_points > 0)

let () =
  let per_server name f =
    List.map
      (fun s -> Alcotest.test_case (name ^ ": " ^ Testbed.name s) `Quick (fun () -> f s))
      Testbed.all
  in
  Alcotest.run "mcr_workloads"
    [
      ( "benchmarks",
        [
          Alcotest.test_case "http (nginx)" `Quick test_http_bench_completes;
          Alcotest.test_case "http (httpd)" `Quick test_httpd_bench_completes;
          Alcotest.test_case "ftp" `Quick test_ftp_bench_completes;
          Alcotest.test_case "ssh" `Quick test_ssh_bench_completes;
        ] );
      ("holders", per_server "lifecycle" test_holders_lifecycle);
      ("fig3-mechanics", per_server "update under holds" test_update_under_held_connections);
      ("profiling", per_server "workload" test_profiling_workload_runs);
    ]
