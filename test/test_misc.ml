(* Smoke tests for the presentation and configuration surfaces: every
   pretty-printer renders something sensible for every constructor, and the
   cost models are well-formed. *)

module S = Mcr_simos.Sysdefs
module Costs = Mcr_simos.Costs
module Ty = Mcr_types.Ty
module Addr = Mcr_vmem.Addr
module Region = Mcr_vmem.Region
module W = Mcr_workloads

let render pp v = Format.asprintf "%a" pp v

let all_calls =
  [
    S.Socket;
    S.Bind { fd = 1000; port = 80 };
    S.Listen { fd = 1000; backlog = 8 };
    S.Accept { fd = 1000; nonblock = true };
    S.Accept_timed { fd = 1000; timeout_ns = 5 };
    S.Connect { port = 80 };
    S.Read { fd = 3; max = 10; nonblock = false };
    S.Write { fd = 3; data = "x" };
    S.Close { fd = 3 };
    S.Open { path = "/p"; create = true };
    S.Open_at { path = "/p"; create = false; force_fd = 1001 };
    S.Dup { fd = 3 };
    S.Poll { fds = [ 1; 2 ]; timeout_ns = Some 7; nonblock = false };
    S.Getpid;
    S.Getppid;
    S.Fork { entry = "w" };
    S.Thread_create { entry = "t" };
    S.Waitpid { pid = 2 };
    S.Exit { status = 0 };
    S.Nanosleep { ns = 1 };
    S.Sem_wait { name = "s"; timeout_ns = None };
    S.Sem_post { name = "s" };
    S.Unix_listen { path = "/u" };
    S.Unix_connect { path = "/u" };
    S.Send_fd { conn = 3; payload = 4 };
    S.Recv_fd { conn = 3; nonblock = true };
    S.Recv_fd_at { conn = 3; force_fd = 1002; nonblock = false };
    S.Shmget { key = 1 };
  ]

let test_call_printers () =
  List.iter
    (fun c ->
      let s = render S.pp_call c in
      Alcotest.(check bool) (S.call_name c ^ " renders") true (String.length s > 0))
    all_calls;
  (* names are unique *)
  let names = List.map S.call_name all_calls in
  Alcotest.(check int) "unique mnemonics" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_result_printers () =
  List.iter
    (fun r -> Alcotest.(check bool) "renders" true (String.length (render S.pp_result r) > 0))
    [
      S.Ok_unit; S.Ok_fd 1; S.Ok_pid 2; S.Ok_data "abc"; S.Ok_len 3; S.Ok_ready [ 1 ];
      S.Ok_status 0; S.Err S.EAGAIN;
    ]

let test_ty_printer () =
  let env = Ty.env_create () in
  ignore env;
  List.iter
    (fun (ty, expect) -> Alcotest.(check string) expect expect (Ty.to_string ty))
    [
      (Ty.Int, "int");
      (Ty.Word, "long");
      (Ty.Char_array 8, "char[8]");
      (Ty.Ptr Ty.Int, "int*");
      (Ty.Void_ptr, "void*");
      (Ty.Array (Ty.Int, 4), "int[4]");
      (Ty.Named "foo", "foo");
      (Ty.Opaque 2, "opaque[2w]");
    ]

let test_region_and_addr_printers () =
  Alcotest.(check string) "addr hex" "0x1000" (Addr.to_string 0x1000);
  let r = { Region.base = 0x1000; size = 4096; kind = Region.Heap; name = "h" } in
  let s = render Region.pp r in
  Alcotest.(check bool) "region mentions kind" true
    (String.length s > 0 && String.sub s 0 4 = "heap")

let test_costs_sane () =
  let open Costs in
  Alcotest.(check bool) "default costs positive" true
    (default.syscall_ns > 0 && default.alloc_ns > 0 && default.tag_word_ns > 0
    && default.transfer_word_ns > 0);
  Alcotest.(check int) "zero model is zero" 0
    (zero.syscall_ns + zero.byte_ns + zero.alloc_ns + zero.tag_word_ns + zero.qhook_ns
    + zero.transfer_word_ns + zero.trace_obj_ns + zero.scan_word_ns + zero.app_work_ns
    + zero.record_ns + zero.replay_match_ns + zero.spawn_ns + zero.switch_ns
    + zero.unblock_wrap_ns)

let test_bench_result_helpers () =
  let r = { W.Bench_result.requests = 100; errors = 0; bytes = 1000; elapsed_ns = 2_000_000_000 } in
  Alcotest.(check (float 0.001)) "throughput" 50.0 (W.Bench_result.throughput r);
  Alcotest.(check bool) "pp renders" true
    (String.length (render W.Bench_result.pp r) > 0);
  let z = { r with W.Bench_result.elapsed_ns = 0 } in
  Alcotest.(check (float 0.001)) "zero elapsed safe" 0.0 (W.Bench_result.throughput z)

let test_blocking_classification () =
  Alcotest.(check bool) "accept blocks" true (S.is_blocking (S.Accept { fd = 1; nonblock = false }));
  Alcotest.(check bool) "nonblock accept does not" false
    (S.is_blocking (S.Accept { fd = 1; nonblock = true }));
  Alcotest.(check bool) "accept_timed blocks" true
    (S.is_blocking (S.Accept_timed { fd = 1; timeout_ns = 1 }));
  Alcotest.(check bool) "write does not" false (S.is_blocking (S.Write { fd = 1; data = "" }))

let () =
  Alcotest.run "mcr_misc"
    [
      ( "printers",
        [
          Alcotest.test_case "calls" `Quick test_call_printers;
          Alcotest.test_case "results" `Quick test_result_printers;
          Alcotest.test_case "types" `Quick test_ty_printer;
          Alcotest.test_case "regions and addrs" `Quick test_region_and_addr_printers;
        ] );
      ( "config",
        [
          Alcotest.test_case "cost models" `Quick test_costs_sane;
          Alcotest.test_case "bench results" `Quick test_bench_result_helpers;
          Alcotest.test_case "blocking classification" `Quick test_blocking_classification;
        ] );
    ]
