(* Tests for the simulated production servers (nginx, httpd, vsftpd, sshd):
   serving, process architecture, live update with state preservation. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Ty = Mcr_types.Ty
module Symtab = Mcr_types.Symtab
module Aspace = Mcr_vmem.Aspace
module Manager = Mcr_core.Manager
module Nginx = Mcr_servers.Nginx_sim

let drive ?(max_s = 300) kernel pred =
  let ok = K.run_until kernel ~max_ns:(K.clock_ns kernel + (max_s * 1_000_000_000)) pred in
  Alcotest.(check bool) "simulation progressed" true ok

let spawn_client kernel name body =
  K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name ~entry:"main"
    ~main:body ()

let connect_retry port =
  let rec go n =
    match K.syscall (S.Connect { port }) with
    | S.Ok_fd fd -> Some fd
    | S.Err S.ECONNREFUSED when n > 0 ->
        ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
        go (n - 1)
    | _ -> None
  in
  go 200

(* one-shot request/reply against a port *)
let rpc kernel ~port data =
  let reply = ref None in
  let p =
    spawn_client kernel "rpc" (fun _ ->
        match connect_retry port with
        | None -> reply := Some "NOCONN"
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data }));
            match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD"))
  in
  drive kernel (fun () -> not (K.alive p));
  Option.value !reply ~default:"NONE"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* nginx *)

let boot_nginx ?(version = Nginx.base ()) () =
  let kernel = K.create () in
  K.fs_write kernel ~path:"/etc/nginx.conf" "workers=1";
  K.fs_write kernel ~path:"/www/index.html" "<html>hello</html>";
  K.fs_write kernel ~path:"/www/a.txt" "AAAA";
  let m = Manager.launch kernel version in
  Alcotest.(check bool) "nginx startup" true (Manager.wait_startup m ());
  (kernel, m)

let test_nginx_serves () =
  let kernel, _ = boot_nginx () in
  let r = rpc kernel ~port:Nginx.port "GET /index.html" in
  Alcotest.(check bool) "served file" true (contains r "<html>hello</html>");
  Alcotest.(check bool) "counter 1" true (contains r "#1");
  let r2 = rpc kernel ~port:Nginx.port "GET /a.txt" in
  Alcotest.(check bool) "second request" true (contains r2 "#2" && contains r2 "AAAA")

let test_nginx_404 () =
  let kernel, _ = boot_nginx () in
  let r = rpc kernel ~port:Nginx.port "GET /missing" in
  Alcotest.(check bool) "404" true (contains r "404")

let test_nginx_two_processes () =
  let kernel, m = boot_nginx () in
  ignore (rpc kernel ~port:Nginx.port "GET /a.txt");
  Alcotest.(check int) "master + worker" 2 (List.length (Manager.images m));
  ignore kernel

let test_nginx_update_preserves_counters () =
  let kernel, m = boot_nginx () in
  ignore (rpc kernel ~port:Nginx.port "GET /index.html");
  ignore (rpc kernel ~port:Nginx.port "GET /index.html");
  let m2, report = Manager.update m (Nginx.final ()) in
  Alcotest.(check bool) "nginx update ok" true report.Manager.success;
  Alcotest.(check (option string)) "no failure" None (Option.map Mcr_error.to_string report.Manager.failure);
  let r = rpc kernel ~port:Nginx.port "GET /index.html" in
  Alcotest.(check bool) "counter continued across update" true (contains r "#3");
  Alcotest.(check int) "new master + worker" 2 (List.length (Manager.images m2))

let test_nginx_update_with_held_connections () =
  let kernel, m = boot_nginx () in
  ignore (rpc kernel ~port:Nginx.port "GET /index.html");
  (* open held connections that stay alive across the update *)
  let replies = ref [] in
  let holders =
    List.init 3 (fun i ->
        spawn_client kernel (Printf.sprintf "holder%d" i) (fun _ ->
            match connect_retry Nginx.port with
            | Some fd -> (
                ignore (K.syscall (S.Write { fd; data = "HOLD" }));
                (* wait long enough for the update to complete, then ask *)
                ignore (K.syscall (S.Nanosleep { ns = 800_000_000 }));
                ignore (K.syscall (S.Write { fd; data = "GET /a.txt" }));
                match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
                | S.Ok_data d -> replies := d :: !replies
                | _ -> replies := "NOREAD" :: !replies)
            | None -> replies := "NOCONN" :: !replies))
  in
  (* let the HOLDs land *)
  K.run_for kernel 50_000_000;
  let _m2, report = Manager.update m (Nginx.final ()) in
  Alcotest.(check bool) "update ok with open connections" true report.Manager.success;
  drive kernel (fun () -> List.for_all (fun p -> not (K.alive p)) holders);
  Alcotest.(check int) "all held connections served" 3 (List.length !replies);
  List.iter
    (fun r ->
      Alcotest.(check bool) "held connection answered by new version" true (contains r "AAAA"))
    !replies

let test_nginx_series_shape () =
  let versions = Nginx.versions () in
  Alcotest.(check int) "26 versions (25 updates)" 26 (List.length versions);
  (* consecutive versions differ structurally *)
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        let d = P.diff_versions a b in
        Alcotest.(check bool) "some change per update" true
          (d.P.funcs_changed + d.P.vars_changed + d.P.types_changed > 0);
        pairs rest
    | _ -> ()
  in
  pairs versions

let test_nginx_grow_workers_update () =
  (* Section 7's nondeterministic process model, growing direction: the new
     version forks MORE workers than the recorded startup — the extra fork
     has no log entry and simply executes live *)
  let kernel, m = boot_nginx () in
  ignore (rpc kernel ~port:Nginx.port "GET /index.html");
  let m2, report = Manager.update m (Nginx.final_with_workers 2) in
  Alcotest.(check bool) "grow-workers update ok" true report.Manager.success;
  Alcotest.(check int) "master + two workers" 3 (List.length (Manager.images m2));
  let r = rpc kernel ~port:Nginx.port "GET /index.html" in
  Alcotest.(check bool) "serves" true (contains r "200")

let test_nginx_shrink_workers_rolls_back () =
  (* shrinking omits a recorded fork: a mutable-reinitialization conflict *)
  let kernel, m = boot_nginx ~version:(Nginx.final_with_workers 2) () in
  ignore (rpc kernel ~port:Nginx.port "GET /index.html");
  let m2, report = Manager.update m (Nginx.final_with_workers 1) in
  Alcotest.(check bool) "shrink-workers rolls back" false report.Manager.success;
  Alcotest.(check bool) "omission conflict" true (report.Manager.replay_conflicts <> []);
  Alcotest.(check bool) "same manager" true (m == m2);
  let r = rpc kernel ~port:Nginx.port "GET /index.html" in
  Alcotest.(check bool) "old version still serves" true (contains r "200")

let test_nginx_likely_pointers_from_pools () =
  let kernel, m = boot_nginx () in
  ignore (rpc kernel ~port:Nginx.port "GET /index.html");
  (* hold a connection so pool-resident connection objects are live *)
  let _holder =
    spawn_client kernel "h" (fun _ ->
        match connect_retry Nginx.port with
        | Some fd ->
            ignore (K.syscall (S.Write { fd; data = "HOLD" }));
            ignore (K.syscall (S.Nanosleep { ns = 3_000_000_000 }))
        | None -> ())
  in
  K.run_for kernel 50_000_000;
  let stats = Manager.trace_statistics m in
  let open Mcr_trace.Objgraph in
  Alcotest.(check bool) "likely pointers from uninstrumented pools" true (stats.likely.ptr > 0);
  Alcotest.(check bool) "precise pointers" true (stats.precise.ptr > 0)

(* ------------------------------------------------------------------ *)
(* httpd *)

module Httpd = Mcr_servers.Httpd_sim

let boot_httpd () =
  let kernel = K.create () in
  K.fs_write kernel ~path:"/etc/httpd.conf" "ServerLimit 2";
  K.fs_write kernel ~path:"/www/index.html" "<apache/>";
  let m = Manager.launch kernel (Httpd.base ()) in
  Alcotest.(check bool) "httpd startup" true (Manager.wait_startup m ());
  (* let the server children reach their quiescent points *)
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 2_000_000_000)
            (fun () -> List.length (Manager.images m) >= 1 + Httpd.servers));
  (kernel, m)

let test_httpd_serves () =
  let kernel, m = boot_httpd () in
  let r = rpc kernel ~port:Httpd.port "GET /index.html" in
  Alcotest.(check bool) "served" true (contains r "<apache/>");
  Alcotest.(check int) "master + servers" (1 + Httpd.servers) (List.length (Manager.images m))

let test_httpd_update_preserves_vhost_stats () =
  let kernel, m = boot_httpd () in
  for _ = 1 to 4 do
    ignore (rpc kernel ~port:Httpd.port "GET /index.html")
  done;
  let m2, report = Manager.update m (Httpd.final ()) in
  Alcotest.(check bool) "httpd update ok" true report.Manager.success;
  ignore (rpc kernel ~port:Httpd.port "GET /index.html");
  (* read the vhost hit counters out of the new version's memory: summed
     across server processes they must cover all 5 requests *)
  let total =
    List.fold_left
      (fun acc (im : P.image) ->
        let aspace = im.P.i_aspace in
        let env = im.P.i_version.P.tyenv in
        let head = (Symtab.lookup im.P.i_symtab "ap_vhost_head").Symtab.addr in
        let rec walk addr acc =
          if addr = 0 then acc
          else
            walk
              (Mcr_types.Access.read_field aspace env ~base:addr (Ty.Named "ap_vhost_t") "next")
              (acc + Mcr_types.Access.read_field aspace env ~base:addr (Ty.Named "ap_vhost_t") "hits")
        in
        acc + walk (Mcr_vmem.Aspace.read_word aspace head) 0)
      0 (Manager.images m2)
  in
  Alcotest.(check int) "vhost hits preserved and extended" 5 total

let test_httpd_unprepared_update_rolls_back () =
  let kernel, m = boot_httpd () in
  ignore (rpc kernel ~port:Httpd.port "GET /index.html");
  let m2, report = Manager.update m (Httpd.unprepared ()) in
  Alcotest.(check bool) "unprepared update fails" false report.Manager.success;
  Alcotest.(check bool) "same manager" true (m == m2);
  let r = rpc kernel ~port:Httpd.port "GET /index.html" in
  Alcotest.(check bool) "old version still serves" true (contains r "<apache/>")

let test_httpd_hold_workers_survive_update () =
  let kernel, m = boot_httpd () in
  ignore (rpc kernel ~port:Httpd.port "GET /index.html");
  let reply = ref None in
  let _holder =
    spawn_client kernel "holder" (fun _ ->
        match connect_retry Httpd.port with
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data = "HOLD" }));
            ignore (K.syscall (S.Nanosleep { ns = 800_000_000 }));
            ignore (K.syscall (S.Write { fd; data = "GET /index.html" }));
            match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD")
        | None -> reply := Some "NOCONN")
  in
  K.run_for kernel 100_000_000;
  let _m2, report = Manager.update m (Httpd.final ()) in
  Alcotest.(check bool) "update ok with held connection" true report.Manager.success;
  drive kernel (fun () -> !reply <> None);
  (match !reply with
  | Some r -> Alcotest.(check bool) "held connection served after update" true (contains r "<apache/>")
  | None -> Alcotest.fail "no reply")

(* ------------------------------------------------------------------ *)
(* vsftpd *)

module Vsftpd = Mcr_servers.Vsftpd_sim

let boot_vsftpd () =
  let kernel = K.create () in
  K.fs_write kernel ~path:"/etc/vsftpd.conf" "anonymous_enable=NO";
  K.fs_write kernel ~path:(Vsftpd.ftp_root ^ "/hello.txt") "FILE-CONTENT";
  let m = Manager.launch kernel (Vsftpd.base ()) in
  Alcotest.(check bool) "vsftpd startup" true (Manager.wait_startup m ());
  (kernel, m)

(* scripted FTP client: connect, login, then run [script] with pauses *)
let ftp_session kernel script results =
  spawn_client kernel "ftp-client" (fun _ ->
      match connect_retry Vsftpd.port with
      | None -> results := [ "NOCONN" ]
      | Some fd ->
          let recv () =
            match K.syscall (S.Read { fd; max = 1 lsl 20; nonblock = false }) with
            | S.Ok_data d -> d
            | _ -> "NOREAD"
          in
          let _banner = recv () in
          List.iter
            (fun step ->
              match step with
              | `Send cmd ->
                  ignore (K.syscall (S.Write { fd; data = cmd }));
                  results := !results @ [ recv () ]
              | `Recv_until marker ->
                  let rec drain acc =
                    if contains acc marker then acc
                    else
                      match recv () with
                      | "NOREAD" -> acc
                      | more -> drain (acc ^ more)
                  in
                  results := !results @ [ drain "" ]
              | `Sleep ns -> ignore (K.syscall (S.Nanosleep { ns })))
            script)

let test_vsftpd_login_and_retr () =
  let kernel, _ = boot_vsftpd () in
  let results = ref [] in
  let p =
    ftp_session kernel
      [ `Send "USER alice"; `Send "PASS secret"; `Send "RETR hello.txt"; `Recv_until "226";
        `Send "STAT"; `Send "QUIT" ]
      results
  in
  drive kernel (fun () -> not (K.alive p));
  match !results with
  | [ u; pass; retr; data; stat; quit ] ->
      Alcotest.(check bool) "331" true (contains u "331");
      Alcotest.(check bool) "230" true (contains pass "230");
      Alcotest.(check bool) "transfer started" true (contains retr "150");
      Alcotest.(check bool) "file content" true (contains data "FILE-CONTENT");
      Alcotest.(check bool) "cmds=4" true (contains stat "cmds=4");
      Alcotest.(check bool) "221" true (contains quit "221")
  | other -> Alcotest.failf "unexpected results (%d)" (List.length other)

let test_vsftpd_update_mid_transfer_drains () =
  (* an update requested while a 1 MB RETR is streaming: the mid-transfer
     thread is not at a quiescent point, so quiescence waits for the
     download to finish — the client receives every byte, from the old
     version, and the update then commits *)
  let kernel, m = boot_vsftpd () in
  K.fs_write kernel ~path:(Vsftpd.ftp_root ^ "/big.bin") (String.make (1 lsl 20) 'z');
  let got = ref 0 and finished = ref false in
  let _client =
    spawn_client kernel "dl" (fun _ ->
        match connect_retry Vsftpd.port with
        | None -> ()
        | Some fd ->
            let recv () =
              match K.syscall (S.Read { fd; max = 1 lsl 20; nonblock = false }) with
              | S.Ok_data d -> d
              | _ -> ""
            in
            let _ = recv () in
            ignore (K.syscall (S.Write { fd; data = "USER u" }));
            ignore (recv ());
            ignore (K.syscall (S.Write { fd; data = "PASS p" }));
            ignore (recv ());
            ignore (K.syscall (S.Write { fd; data = "RETR big.bin" }));
            let rec drain () =
              let d = recv () in
              if contains d "226" then finished := true
              else begin
                got := !got + String.length d;
                drain ()
              end
            in
            drain ())
  in
  (* let the download get going, then update mid-stream *)
  drive kernel (fun () -> !got > 0);
  let _m2, report = Manager.update m (Vsftpd.final ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  drive kernel (fun () -> !finished);
  Alcotest.(check bool) "no data lost (quiescence drained the transfer)" true
    (!got >= (1 lsl 20))

let test_vsftpd_sessions_survive_update () =
  let kernel, m = boot_vsftpd () in
  let results = ref [] in
  let p =
    ftp_session kernel
      [
        `Send "USER bob";
        `Send "PASS pw";
        `Send "STAT";
        `Sleep 900_000_000 (* update happens here *);
        `Send "STAT";
        `Send "QUIT";
      ]
      results
  in
  (* run until the session reaches its sleep (three replies collected) *)
  drive kernel (fun () -> List.length !results >= 3);
  Alcotest.(check bool) "pre-update cmds=3" true (contains (List.nth !results 2) "cmds=3");
  let m2, report = Manager.update m (Vsftpd.final ()) in
  Alcotest.(check bool) "vsftpd update ok" true report.Manager.success;
  drive kernel (fun () -> not (K.alive p));
  (match !results with
  | [ _; _; _; stat2; quit ] ->
      (* the per-session command counter survived into the new version *)
      Alcotest.(check bool) "post-update cmds=4" true (contains stat2 "cmds=4");
      Alcotest.(check bool) "clean quit" true (contains quit "221")
  | other -> Alcotest.failf "unexpected results (%d)" (List.length other));
  (* and brand-new sessions work *)
  let results2 = ref [] in
  let p2 = ftp_session kernel [ `Send "USER carol"; `Send "QUIT" ] results2 in
  drive kernel (fun () -> not (K.alive p2));
  Alcotest.(check bool) "new session on new version" true
    (contains (List.nth !results2 0) "331");
  ignore m2

(* ------------------------------------------------------------------ *)
(* sshd *)

module Sshd = Mcr_servers.Sshd_sim

let boot_sshd () =
  let kernel = K.create () in
  K.fs_write kernel ~path:"/etc/sshd_config" "PermitRootLogin no";
  let m = Manager.launch kernel (Sshd.base ()) in
  Alcotest.(check bool) "sshd startup" true (Manager.wait_startup m ());
  (kernel, m)

let ssh_session kernel script results =
  spawn_client kernel "ssh-client" (fun _ ->
      match connect_retry Sshd.port with
      | None -> results := [ "NOCONN" ]
      | Some fd ->
          let recv () =
            match K.syscall (S.Read { fd; max = 4096; nonblock = false }) with
            | S.Ok_data d -> d
            | _ -> "NOREAD"
          in
          let _banner = recv () in
          List.iter
            (fun step ->
              match step with
              | `Send cmd ->
                  ignore (K.syscall (S.Write { fd; data = cmd }));
                  results := !results @ [ recv () ]
              | `Sleep ns -> ignore (K.syscall (S.Nanosleep { ns })))
            script)

let test_sshd_auth_and_run () =
  let kernel, _ = boot_sshd () in
  let results = ref [] in
  let p =
    ssh_session kernel [ `Send "RUN ls"; `Send "AUTH root"; `Send "RUN ls"; `Send "EXIT" ] results
  in
  drive kernel (fun () -> not (K.alive p));
  match !results with
  | [ denied; auth; run; bye ] ->
      Alcotest.(check bool) "denied before auth" true (contains denied "denied");
      Alcotest.(check bool) "auth ok" true (contains auth "auth-ok");
      Alcotest.(check bool) "run output" true (contains run "out:ls");
      Alcotest.(check bool) "bye" true (contains bye "bye")
  | other -> Alcotest.failf "unexpected results (%d)" (List.length other)

let test_sshd_sessions_survive_update () =
  let kernel, m = boot_sshd () in
  let results = ref [] in
  let p =
    ssh_session kernel
      [ `Send "AUTH dave"; `Send "RUN uptime"; `Sleep 900_000_000; `Send "RUN uptime"; `Send "EXIT" ]
      results
  in
  drive kernel (fun () -> List.length !results >= 2);
  Alcotest.(check bool) "authed pre-update" true (contains (List.nth !results 0) "auth-ok");
  let _m2, report = Manager.update m (Sshd.final ()) in
  Alcotest.(check bool) "sshd update ok" true report.Manager.success;
  drive kernel (fun () -> not (K.alive p));
  match !results with
  | [ _; run1; run2; bye ] ->
      Alcotest.(check bool) "counter before" true (contains run1 "#2");
      (* auth state and command counter survived *)
      Alcotest.(check bool) "still authed, counter continued" true (contains run2 "#3");
      Alcotest.(check bool) "clean exit" true (contains bye "bye")
  | other -> Alcotest.failf "unexpected results (%d)" (List.length other)

let () =
  Alcotest.run "mcr_servers"
    [
      ( "nginx",
        [
          Alcotest.test_case "serves files" `Quick test_nginx_serves;
          Alcotest.test_case "404" `Quick test_nginx_404;
          Alcotest.test_case "two processes" `Quick test_nginx_two_processes;
          Alcotest.test_case "update preserves counters" `Quick
            test_nginx_update_preserves_counters;
          Alcotest.test_case "update with held connections" `Quick
            test_nginx_update_with_held_connections;
          Alcotest.test_case "series shape" `Quick test_nginx_series_shape;
          Alcotest.test_case "grow workers" `Quick test_nginx_grow_workers_update;
          Alcotest.test_case "shrink workers rolls back" `Quick
            test_nginx_shrink_workers_rolls_back;
          Alcotest.test_case "pool likely pointers" `Quick test_nginx_likely_pointers_from_pools;
        ] );
      ( "httpd",
        [
          Alcotest.test_case "serves" `Quick test_httpd_serves;
          Alcotest.test_case "update preserves vhost stats" `Quick
            test_httpd_update_preserves_vhost_stats;
          Alcotest.test_case "unprepared rolls back" `Quick
            test_httpd_unprepared_update_rolls_back;
          Alcotest.test_case "hold workers survive update" `Quick
            test_httpd_hold_workers_survive_update;
        ] );
      ( "vsftpd",
        [
          Alcotest.test_case "login and retr" `Quick test_vsftpd_login_and_retr;
          Alcotest.test_case "sessions survive update" `Quick
            test_vsftpd_sessions_survive_update;
          Alcotest.test_case "mid-transfer update drains" `Quick
            test_vsftpd_update_mid_transfer_drains;
        ] );
      ( "sshd",
        [
          Alcotest.test_case "auth and run" `Quick test_sshd_auth_and_run;
          Alcotest.test_case "sessions survive update" `Quick
            test_sshd_sessions_survive_update;
        ] );
    ]
