(* Tests for the observability subsystem (lib/obs): ring-buffer sink,
   metrics registry, deterministic exports, and the span structure of a
   full live update. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Listing1 = Mcr_servers.Listing1
module Trace = Mcr_obs.Trace
module Metrics = Mcr_obs.Metrics
module Export = Mcr_obs.Export

(* ------------------------------------------------------------------ *)
(* Sink unit tests *)

let mk_sink ?capacity clock_val =
  Trace.create ?capacity ~clock:(fun () -> !clock_val) ()

let test_ring_order_and_overflow () =
  let clock = ref 0 in
  let t = mk_sink ~capacity:4 clock in
  for i = 1 to 6 do
    clock := i * 10;
    Trace.emit t Trace.Instant (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "emitted" 6 (Trace.emitted t);
  Alcotest.(check int) "length capped" 4 (Trace.length t);
  Alcotest.(check int) "dropped" 2 (Trace.dropped t);
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events t) in
  Alcotest.(check (list string)) "oldest dropped, order kept"
    [ "e3"; "e4"; "e5"; "e6" ] names;
  let seqs = List.map (fun (e : Trace.event) -> e.Trace.seq) (Trace.events t) in
  Alcotest.(check (list int)) "seqs dense and increasing" [ 2; 3; 4; 5 ] seqs;
  Trace.clear t;
  Alcotest.(check int) "clear empties" 0 (Trace.length t)

let test_option_emitters () =
  (* a None sink must be a no-op, not an error *)
  Trace.span_begin None "x";
  Trace.span_end None "x";
  Trace.instant None "x";
  Trace.complete None ~dur_ns:5 "x";
  let clock = ref 7 in
  let t = mk_sink clock in
  Trace.span_begin (Some t) ~pid:1 ~tid:2 ~cat:"c" "s";
  Trace.complete (Some t) ~dur_ns:5 "x";
  match Trace.events t with
  | [ b; c ] ->
      Alcotest.(check int) "ts from clock" 7 b.Trace.ts_ns;
      Alcotest.(check int) "pid" 1 b.Trace.pid;
      Alcotest.(check bool) "begin phase" true (b.Trace.phase = Trace.Begin);
      Alcotest.(check bool) "complete phase" true (c.Trace.phase = Trace.Complete 5)
  | _ -> Alcotest.fail "expected 2 events"

(* ------------------------------------------------------------------ *)
(* Metrics unit tests *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c_total" in
  let c' = Metrics.counter m "c_total" in
  Metrics.incr c;
  Metrics.incr ~by:4 c';
  let g = Metrics.gauge m "g" in
  Metrics.set g 3;
  Metrics.set g 9;
  let h = Metrics.histogram m "h" in
  Metrics.observe h 500;
  Metrics.observe h 2_000_000;
  (match Metrics.counter m "g" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must raise");
  let s = Metrics.snapshot m in
  Alcotest.(check (option int)) "counter re-registration shares state" (Some 5)
    (List.assoc_opt "c_total" s.Metrics.counters);
  Alcotest.(check (option int)) "gauge keeps last" (Some 9)
    (List.assoc_opt "g" s.Metrics.gauges);
  (match List.assoc_opt "h" s.Metrics.histograms with
  | Some hs ->
      Alcotest.(check int) "hist total" 2 hs.Metrics.total;
      Alcotest.(check int) "hist sum" 2_000_500 hs.Metrics.sum
  | None -> Alcotest.fail "histogram missing from snapshot");
  (* diff subtracts counters and histogram cells, keeps latest gauges *)
  Metrics.incr ~by:2 c;
  Metrics.observe h 100;
  let s2 = Metrics.snapshot m in
  let d = Metrics.diff ~latest:s2 ~earlier:s in
  Alcotest.(check (option int)) "diff counter" (Some 2)
    (List.assoc_opt "c_total" d.Metrics.counters);
  (match List.assoc_opt "h" d.Metrics.histograms with
  | Some hs -> Alcotest.(check int) "diff hist total" 1 hs.Metrics.total
  | None -> Alcotest.fail "diff histogram missing")

let test_render_deterministic () =
  let m = Metrics.create () in
  (* registration order differs from name order; render must sort *)
  Metrics.set (Metrics.gauge m "zz") 1;
  Metrics.incr (Metrics.counter m "aa_total");
  let r1 = Metrics.render (Metrics.snapshot m) in
  let r2 = Metrics.render (Metrics.snapshot m) in
  Alcotest.(check string) "render stable" r1 r2;
  Alcotest.(check string) "empty registry" "(no metrics)\n"
    (Metrics.render (Metrics.snapshot (Metrics.create ())))

(* ------------------------------------------------------------------ *)
(* Full-pipeline determinism and span structure *)

let run_update ~with_trace () =
  let kernel = K.create () in
  let trace =
    if with_trace then Some (Trace.create ~clock:(fun () -> K.clock_ns kernel) ())
    else None
  in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel ?trace (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  ignore
    (Mcr_workloads.Http_bench.run kernel ~port:Listing1.port ~requests:3 ~path:"/" ());
  let _m2, report = Manager.update m (Listing1.v2 ()) in
  (kernel, trace, report)

let test_chrome_export_byte_identical () =
  let _, tr1, r1 = run_update ~with_trace:true () in
  let _, tr2, r2 = run_update ~with_trace:true () in
  Alcotest.(check bool) "both updates committed" true
    (r1.Manager.success && r2.Manager.success);
  let j1 = Export.chrome_json (Option.get tr1) in
  let j2 = Export.chrome_json (Option.get tr2) in
  Alcotest.(check bool) "export non-trivial" true (String.length j1 > 200);
  Alcotest.(check string) "chrome exports byte-identical" j1 j2;
  Alcotest.(check string) "timelines byte-identical"
    (Export.timeline (Option.get tr1))
    (Export.timeline (Option.get tr2))

let test_disabled_sink_changes_nothing () =
  let k1, _, r1 = run_update ~with_trace:true () in
  let k2, _, r2 = run_update ~with_trace:false () in
  Alcotest.(check int) "total_ns identical" r2.Manager.total_ns r1.Manager.total_ns;
  Alcotest.(check int) "quiesce_ns identical" r2.Manager.quiesce_ns r1.Manager.quiesce_ns;
  Alcotest.(check int) "state_transfer_ns identical" r2.Manager.state_transfer_ns
    r1.Manager.state_transfer_ns;
  Alcotest.(check int) "final virtual clock identical" (K.clock_ns k2) (K.clock_ns k1)

let stage_lines trace =
  List.filter_map
    (fun (e : Trace.event) ->
      if e.Trace.cat = "stage" then
        Some (Trace.phase_name e.Trace.phase ^ " " ^ e.Trace.name)
      else None)
    (Trace.events trace)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_span_structure_golden () =
  let _, trace, r = run_update ~with_trace:true () in
  Alcotest.(check bool) "committed" true r.Manager.success;
  let trace = Option.get trace in
  Alcotest.(check (list string)) "stage event structure matches golden"
    (read_lines "golden/obs_spans.golden")
    (stage_lines trace);
  (* structural reconstruction: no unbalanced begin/end, and the four
     stages nest directly under the update span *)
  let spans, errors = Export.spans trace in
  Alcotest.(check (list string)) "no structural violations" [] errors;
  let find name =
    match List.find_opt (fun (s : Export.span) -> s.Export.s_name = name) spans with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" name
  in
  let update = find "update" in
  Alcotest.(check int) "update at depth 0" 0 update.Export.s_depth;
  List.iter
    (fun stage ->
      let s = find stage in
      Alcotest.(check int) (stage ^ " nested in update") 1 s.Export.s_depth;
      Alcotest.(check bool) (stage ^ " inside update interval") true
        (s.Export.s_begin_ns >= update.Export.s_begin_ns
        && s.Export.s_end_ns <= update.Export.s_end_ns))
    [ "quiesce"; "restart_replay"; "state_transfer"; "commit" ];
  (* the per-pair transfer rides along as a Complete event *)
  let pair_events =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.name = "transfer.pair"
        && match e.Trace.phase with Trace.Complete _ -> true | _ -> false)
      (Trace.events trace)
  in
  Alcotest.(check bool) "at least one transfer.pair X event" true (pair_events <> []);
  (* metrics snapshot attached to the report agrees with the trace *)
  Alcotest.(check (option int)) "one commit counted" (Some 1)
    (List.assoc_opt "mcr_update_commits_total" r.Manager.metrics.Metrics.counters)

let () =
  Alcotest.run "mcr_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring order and overflow" `Quick test_ring_order_and_overflow;
          Alcotest.test_case "option emitters" `Quick test_option_emitters;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "render deterministic" `Quick test_render_deterministic;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "chrome export byte-identical" `Quick
            test_chrome_export_byte_identical;
          Alcotest.test_case "disabled sink changes nothing" `Quick
            test_disabled_sink_changes_nothing;
          Alcotest.test_case "span structure golden" `Quick test_span_structure_golden;
        ] );
    ]
