(* Tests for Mcr_simos: scheduling, sockets, files, fork, semaphores, fd
   passing, interception hooks, virtual time. *)

open Mcr_simos
module S = Sysdefs
module K = Kernel
module Aspace = Mcr_vmem.Aspace

let fresh () = K.create ()

let spawn ?parent ?force_pid k name main =
  K.spawn_process k ?parent ?force_pid ~image:(K.Fresh_image (Aspace.create ())) ~name
    ~entry:"main" ~main ()

let expect_fd = function
  | S.Ok_fd fd -> fd
  | r -> Alcotest.failf "expected fd, got %a" S.pp_result r

let expect_data = function
  | S.Ok_data d -> d
  | r -> Alcotest.failf "expected data, got %a" S.pp_result r

let expect_pid = function
  | S.Ok_pid p -> p
  | r -> Alcotest.failf "expected pid, got %a" S.pp_result r

(* Clients may be scheduled before the server binds; retry like a real
   client would. *)
let connect_retry ?(attempts = 200) port =
  let rec go n =
    match K.syscall (S.Connect { port }) with
    | S.Ok_fd fd -> fd
    | S.Err S.ECONNREFUSED when n > 0 ->
        ignore (K.syscall (S.Nanosleep { ns = 1_000 }));
        go (n - 1)
    | r -> Alcotest.failf "connect: %a" S.pp_result r
  in
  go attempts

(* ------------------------------------------------------------------ *)
(* Basic lifecycle *)

let test_process_runs_and_exits () =
  let k = fresh () in
  let ran = ref false in
  let p = spawn k "prog" (fun _ -> ran := true) in
  K.run k;
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check bool) "process exited" false (K.alive p);
  Alcotest.(check (option int)) "status 0" (Some 0) (K.exit_status p)

let test_exit_syscall () =
  let k = fresh () in
  let after = ref false in
  let p =
    spawn k "prog" (fun _ ->
        ignore (K.syscall (S.Exit { status = 7 }));
        after := true)
  in
  K.run k;
  Alcotest.(check bool) "code after exit does not run" false !after;
  Alcotest.(check (option int)) "status" (Some 7) (K.exit_status p)

let test_crash_reports_139 () =
  let k = fresh () in
  let p = spawn k "prog" (fun _ -> failwith "segfault") in
  K.run k;
  Alcotest.(check (option int)) "crash status" (Some 139) (K.exit_status p)

let test_clock_advances () =
  let k = fresh () in
  let _ = spawn k "prog" (fun _ -> ignore (K.syscall S.Getpid)) in
  K.run k;
  Alcotest.(check bool) "clock moved" true (K.clock_ns k > 0)

let test_nanosleep_advances_clock () =
  let k = fresh () in
  let _ = spawn k "prog" (fun _ -> ignore (K.syscall (S.Nanosleep { ns = 5_000_000 }))) in
  K.run k;
  Alcotest.(check bool) "clock past sleep" true (K.clock_ns k >= 5_000_000)

let test_getpid_getppid () =
  let k = fresh () in
  let seen = ref (0, 0) in
  let p =
    spawn k "prog" (fun _ ->
        let pid = expect_pid (K.syscall S.Getpid) in
        let ppid = expect_pid (K.syscall S.Getppid) in
        seen := (pid, ppid))
  in
  K.run k;
  Alcotest.(check int) "pid" (K.pid p) (fst !seen);
  Alcotest.(check int) "ppid 0 for root" 0 (snd !seen)

let test_force_pid () =
  let k = fresh () in
  let p = spawn ~force_pid:42 k "prog" (fun _ -> ()) in
  Alcotest.(check int) "forced pid" 42 (K.pid p);
  Alcotest.check_raises "pid collision rejected"
    (Invalid_argument "spawn_process: pid 42 already in use") (fun () ->
      ignore (spawn ~force_pid:42 k "prog2" (fun _ -> ())))

(* ------------------------------------------------------------------ *)
(* Sockets *)

let setup_server_client k ~server_body ~client_body =
  let server =
    spawn k "server" (fun th ->
        let fd = expect_fd (K.syscall S.Socket) in
        (match K.syscall (S.Bind { fd; port = 80 }) with
        | S.Ok_unit -> ()
        | r -> Alcotest.failf "bind: %a" S.pp_result r);
        (match K.syscall (S.Listen { fd; backlog = 8 }) with
        | S.Ok_unit -> ()
        | r -> Alcotest.failf "listen: %a" S.pp_result r);
        server_body th fd)
  in
  let client = spawn k "client" client_body in
  (server, client)

let test_accept_connect_read_write () =
  let k = fresh () in
  let got = ref "" in
  let _ =
    setup_server_client k
      ~server_body:(fun _ fd ->
        let conn = expect_fd (K.syscall (S.Accept { fd; nonblock = false })) in
        got := expect_data (K.syscall (S.Read { fd = conn; max = 100; nonblock = false }));
        ignore (K.syscall (S.Write { fd = conn; data = "pong" })))
      ~client_body:(fun _ ->
        let fd = connect_retry 80 in
        ignore (K.syscall (S.Write { fd; data = "ping" }));
        let reply = expect_data (K.syscall (S.Read { fd; max = 100; nonblock = false })) in
        Alcotest.(check string) "client got pong" "pong" reply)
  in
  K.run k;
  Alcotest.(check string) "server got ping" "ping" !got

let test_connect_refused_no_listener () =
  let k = fresh () in
  let result = ref S.Ok_unit in
  let _ = spawn k "client" (fun _ -> result := K.syscall (S.Connect { port = 9999 })) in
  K.run k;
  Alcotest.(check bool) "refused" true (!result = S.Err S.ECONNREFUSED)

let test_bind_conflict () =
  let k = fresh () in
  let second = ref S.Ok_unit in
  let _ =
    spawn k "a" (fun _ ->
        let fd = expect_fd (K.syscall S.Socket) in
        ignore (K.syscall (S.Bind { fd; port = 80 }));
        let fd2 = expect_fd (K.syscall S.Socket) in
        second := K.syscall (S.Bind { fd = fd2; port = 80 }))
  in
  K.run k;
  Alcotest.(check bool) "EADDRINUSE" true (!second = S.Err S.EADDRINUSE)

let test_read_eof_on_close () =
  let k = fresh () in
  let eof = ref "x" in
  let _ =
    setup_server_client k
      ~server_body:(fun _ fd ->
        let conn = expect_fd (K.syscall (S.Accept { fd; nonblock = false })) in
        (* read data then EOF *)
        let _ = K.syscall (S.Read { fd = conn; max = 100; nonblock = false }) in
        eof := expect_data (K.syscall (S.Read { fd = conn; max = 100; nonblock = false })))
      ~client_body:(fun _ ->
        let fd = connect_retry 80 in
        ignore (K.syscall (S.Write { fd; data = "bye" }));
        ignore (K.syscall (S.Close { fd })))
  in
  K.run k;
  Alcotest.(check string) "EOF is empty read" "" !eof

let test_write_to_closed_peer_epipe () =
  let k = fresh () in
  let res = ref S.Ok_unit in
  let _ =
    setup_server_client k
      ~server_body:(fun _ fd ->
        let conn = expect_fd (K.syscall (S.Accept { fd; nonblock = false })) in
        (* wait for client close (EOF), then write *)
        let _ = K.syscall (S.Read { fd = conn; max = 10; nonblock = false }) in
        res := K.syscall (S.Write { fd = conn; data = "late" }))
      ~client_body:(fun _ ->
        let fd = connect_retry 80 in
        ignore (K.syscall (S.Close { fd })))
  in
  K.run k;
  Alcotest.(check bool) "EPIPE" true (!res = S.Err S.EPIPE)

let test_nonblocking_accept_eagain () =
  let k = fresh () in
  let res = ref S.Ok_unit in
  let _ =
    spawn k "server" (fun _ ->
        let fd = expect_fd (K.syscall S.Socket) in
        ignore (K.syscall (S.Bind { fd; port = 80 }));
        ignore (K.syscall (S.Listen { fd; backlog = 8 }));
        res := K.syscall (S.Accept { fd; nonblock = true }))
  in
  K.run k;
  Alcotest.(check bool) "EAGAIN" true (!res = S.Err S.EAGAIN)

let test_partial_read_preserves_order () =
  let k = fresh () in
  let parts = ref [] in
  let _ =
    setup_server_client k
      ~server_body:(fun _ fd ->
        let conn = expect_fd (K.syscall (S.Accept { fd; nonblock = false })) in
        for _ = 1 to 3 do
          parts := expect_data (K.syscall (S.Read { fd = conn; max = 4; nonblock = false })) :: !parts
        done)
      ~client_body:(fun _ ->
        let fd = connect_retry 80 in
        ignore (K.syscall (S.Write { fd; data = "abcdefgh" }));
        ignore (K.syscall (S.Write { fd; data = "ijkl" })))
  in
  K.run k;
  Alcotest.(check (list string)) "chunks in order" [ "abcd"; "efgh"; "ijkl" ] (List.rev !parts)

let test_backlog_refuses_when_full () =
  let k = fresh () in
  let refused = ref 0 in
  let _ =
    spawn k "server" (fun _ ->
        let fd = expect_fd (K.syscall S.Socket) in
        ignore (K.syscall (S.Bind { fd; port = 80 }));
        ignore (K.syscall (S.Listen { fd; backlog = 2 }));
        (* never accept *)
        ignore (K.syscall (S.Nanosleep { ns = 1_000_000_000 })))
  in
  let _ =
    spawn k "clients" (fun _ ->
        ignore (K.syscall (S.Nanosleep { ns = 10_000 }));
        for _ = 1 to 4 do
          match K.syscall (S.Connect { port = 80 }) with
          | S.Err S.ECONNREFUSED -> incr refused
          | _ -> ()
        done)
  in
  K.run k;
  Alcotest.(check int) "two refused" 2 !refused

(* ------------------------------------------------------------------ *)
(* Poll *)

let test_poll_returns_ready_fd () =
  let k = fresh () in
  let ready = ref [] in
  let _ =
    setup_server_client k
      ~server_body:(fun _ fd ->
        match K.syscall (S.Poll { fds = [ fd ]; timeout_ns = None; nonblock = false }) with
        | S.Ok_ready fds -> ready := fds
        | r -> Alcotest.failf "poll: %a" S.pp_result r)
      ~client_body:(fun _ -> ignore (connect_retry 80))
  in
  K.run k;
  Alcotest.(check int) "listener became readable" 1 (List.length !ready)

let test_poll_timeout_empty () =
  let k = fresh () in
  let ready = ref [ 1 ] in
  let _ =
    spawn k "p" (fun _ ->
        let fd = expect_fd (K.syscall S.Socket) in
        ignore (K.syscall (S.Bind { fd; port = 80 }));
        ignore (K.syscall (S.Listen { fd; backlog = 2 }));
        match K.syscall (S.Poll { fds = [ fd ]; timeout_ns = Some 1_000_000; nonblock = false }) with
        | S.Ok_ready fds -> ready := fds
        | _ -> ())
  in
  K.run k;
  Alcotest.(check (list int)) "timed out empty" [] !ready;
  Alcotest.(check bool) "clock advanced past timeout" true (K.clock_ns k >= 1_000_000)

let test_poll_multiple_fds () =
  let k = fresh () in
  let ready_count = ref 0 in
  let _ =
    spawn k "server" (fun _ ->
        let mk port =
          let fd = expect_fd (K.syscall S.Socket) in
          ignore (K.syscall (S.Bind { fd; port }));
          ignore (K.syscall (S.Listen { fd; backlog = 4 }));
          fd
        in
        let fd1 = mk 80 and fd2 = mk 81 in
        match K.syscall (S.Poll { fds = [ fd1; fd2 ]; timeout_ns = None; nonblock = false }) with
        | S.Ok_ready fds -> ready_count := List.length fds
        | _ -> ())
  in
  let _ =
    spawn k "client" (fun _ ->
        ignore (connect_retry 81))
  in
  K.run k;
  Alcotest.(check int) "one of two ready" 1 !ready_count

(* ------------------------------------------------------------------ *)
(* Files *)

let test_file_read_write () =
  let k = fresh () in
  K.fs_write k ~path:"/etc/server.conf" "workers=2";
  let contents = ref "" in
  let _ =
    spawn k "p" (fun _ ->
        let fd = expect_fd (K.syscall (S.Open { path = "/etc/server.conf"; create = false })) in
        contents := expect_data (K.syscall (S.Read { fd; max = 100; nonblock = false }));
        ignore (K.syscall (S.Close { fd })))
  in
  K.run k;
  Alcotest.(check string) "config read" "workers=2" !contents

let test_open_missing_enoent () =
  let k = fresh () in
  let res = ref S.Ok_unit in
  let _ = spawn k "p" (fun _ -> res := K.syscall (S.Open { path = "/nope"; create = false })) in
  K.run k;
  Alcotest.(check bool) "ENOENT" true (!res = S.Err S.ENOENT)

let test_open_create_and_append () =
  let k = fresh () in
  let _ =
    spawn k "p" (fun _ ->
        let fd = expect_fd (K.syscall (S.Open { path = "/log"; create = true })) in
        ignore (K.syscall (S.Write { fd; data = "a" }));
        ignore (K.syscall (S.Write { fd; data = "b" })))
  in
  K.run k;
  Alcotest.(check (option string)) "appended" (Some "ab") (K.fs_read k ~path:"/log")

(* ------------------------------------------------------------------ *)
(* Fork / threads / waitpid *)

let test_fork_runs_entry () =
  let k = fresh () in
  let child_ran = ref false in
  let _ =
    spawn k "p" (fun th ->
        K.set_entry_resolver (K.thread_proc th)
          (fun entry -> if entry = "worker" then Some (fun _ -> child_ran := true) else None);
        let pid = expect_pid (K.syscall (S.Fork { entry = "worker" })) in
        match K.syscall (S.Waitpid { pid }) with
        | S.Ok_status 0 -> ()
        | r -> Alcotest.failf "waitpid: %a" S.pp_result r)
  in
  K.run k;
  Alcotest.(check bool) "child ran" true !child_ran

let test_fork_inherits_fds_and_memory () =
  let k = fresh () in
  let child_saw = ref 0 in
  let child_read = ref "" in
  let _ =
    spawn k "p" (fun th ->
        let proc = K.thread_proc th in
        let sp = K.aspace proc in
        let base =
          Aspace.map sp (Aspace.Near Mcr_vmem.Region.Heap) ~size:4096 Mcr_vmem.Region.Heap
        in
        Aspace.write_word sp base 777;
        let fd = expect_fd (K.syscall S.Socket) in
        ignore (K.syscall (S.Bind { fd; port = 80 }));
        ignore (K.syscall (S.Listen { fd; backlog = 4 }));
        K.set_entry_resolver proc (fun entry ->
            if entry = "worker" then
              Some
                (fun wth ->
                  let wproc = K.thread_proc wth in
                  child_saw := Aspace.read_word (K.aspace wproc) base;
                  (* accept on the inherited listening fd *)
                  let conn = expect_fd (K.syscall (S.Accept { fd; nonblock = false })) in
                  child_read :=
                    expect_data (K.syscall (S.Read { fd = conn; max = 10; nonblock = false })))
            else None);
        let _ = expect_pid (K.syscall (S.Fork { entry = "worker" })) in
        ())
  in
  let _ =
    spawn k "client" (fun _ ->
        let fd = connect_retry 80 in
        ignore (K.syscall (S.Write { fd; data = "hi" })))
  in
  K.run k;
  Alcotest.(check int) "child sees parent memory copy" 777 !child_saw;
  Alcotest.(check string) "child accepts on inherited fd" "hi" !child_read

let test_fork_memory_is_copy () =
  let k = fresh () in
  let parent_after = ref 0 in
  let _ =
    spawn k "p" (fun th ->
        let proc = K.thread_proc th in
        let sp = K.aspace proc in
        let base =
          Aspace.map sp (Aspace.Near Mcr_vmem.Region.Heap) ~size:4096 Mcr_vmem.Region.Heap
        in
        Aspace.write_word sp base 1;
        K.set_entry_resolver proc (fun _ ->
            Some
              (fun wth ->
                Aspace.write_word (K.aspace (K.thread_proc wth)) base 999));
        let pid = expect_pid (K.syscall (S.Fork { entry = "w" })) in
        ignore (K.syscall (S.Waitpid { pid }));
        parent_after := Aspace.read_word sp base)
  in
  K.run k;
  Alcotest.(check int) "child write invisible to parent" 1 !parent_after

let test_thread_create_and_shared_memory () =
  let k = fresh () in
  let seen = ref 0 in
  let _ =
    spawn k "p" (fun th ->
        let proc = K.thread_proc th in
        let sp = K.aspace proc in
        let base =
          Aspace.map sp (Aspace.Near Mcr_vmem.Region.Heap) ~size:4096 Mcr_vmem.Region.Heap
        in
        K.set_entry_resolver proc (fun entry ->
            if entry = "t2" then
              Some (fun _ -> Aspace.write_word sp base 5)
            else None);
        ignore (K.syscall (S.Thread_create { entry = "t2" }));
        (* give the thread a chance to run *)
        ignore (K.syscall (S.Nanosleep { ns = 1000 }));
        seen := Aspace.read_word sp base)
  in
  K.run k;
  Alcotest.(check int) "threads share the address space" 5 !seen

let test_waitpid_blocks_until_exit () =
  let k = fresh () in
  let status = ref (-1) in
  let _ =
    spawn k "p" (fun th ->
        K.set_entry_resolver (K.thread_proc th) (fun _ ->
            Some
              (fun _ ->
                ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
                ignore (K.syscall (S.Exit { status = 3 }))));
        let pid = expect_pid (K.syscall (S.Fork { entry = "w" })) in
        match K.syscall (S.Waitpid { pid }) with
        | S.Ok_status s -> status := s
        | _ -> ())
  in
  K.run k;
  Alcotest.(check int) "waited status" 3 !status

let test_waitpid_unknown_echild () =
  let k = fresh () in
  let res = ref S.Ok_unit in
  let _ = spawn k "p" (fun _ -> res := K.syscall (S.Waitpid { pid = 4242 })) in
  K.run k;
  Alcotest.(check bool) "ECHILD" true (!res = S.Err S.ECHILD)

(* ------------------------------------------------------------------ *)
(* Semaphores *)

let test_sem_wait_post () =
  let k = fresh () in
  let order = ref [] in
  let _ =
    spawn k "waiter" (fun _ ->
        ignore (K.syscall (S.Sem_wait { name = "s"; timeout_ns = None }));
        order := "waiter" :: !order)
  in
  let _ =
    spawn k "poster" (fun _ ->
        ignore (K.syscall (S.Nanosleep { ns = 1000 }));
        order := "poster" :: !order;
        ignore (K.syscall (S.Sem_post { name = "s" })))
  in
  K.run k;
  Alcotest.(check (list string)) "post before wake" [ "waiter"; "poster" ] !order

let test_sem_timeout () =
  let k = fresh () in
  let res = ref S.Ok_unit in
  let _ =
    spawn k "p" (fun _ -> res := K.syscall (S.Sem_wait { name = "never"; timeout_ns = Some 500 }))
  in
  K.run k;
  Alcotest.(check bool) "ETIMEDOUT" true (!res = S.Err S.ETIMEDOUT)

let test_sem_counts () =
  let k = fresh () in
  let served = ref 0 in
  let _ =
    spawn k "poster" (fun _ ->
        ignore (K.syscall (S.Sem_post { name = "c" }));
        ignore (K.syscall (S.Sem_post { name = "c" })))
  in
  for i = 1 to 3 do
    ignore
      (spawn k (Printf.sprintf "w%d" i) (fun _ ->
           match K.syscall (S.Sem_wait { name = "c"; timeout_ns = Some 10_000 }) with
           | S.Ok_unit -> incr served
           | _ -> ()))
  done;
  K.run k;
  Alcotest.(check int) "two of three served" 2 !served

(* ------------------------------------------------------------------ *)
(* Unix sockets and fd passing *)

let test_unix_socket_roundtrip () =
  let k = fresh () in
  let got = ref "" in
  let _ =
    spawn k "daemon" (fun _ ->
        let lfd = expect_fd (K.syscall (S.Unix_listen { path = "/run/mcr.sock" })) in
        let conn = expect_fd (K.syscall (S.Accept { fd = lfd; nonblock = false })) in
        got := expect_data (K.syscall (S.Read { fd = conn; max = 64; nonblock = false })))
  in
  let _ =
    spawn k "ctl" (fun _ ->
        let fd = expect_fd (K.syscall (S.Unix_connect { path = "/run/mcr.sock" })) in
        ignore (K.syscall (S.Write { fd; data = "UPDATE" })))
  in
  K.run k;
  Alcotest.(check string) "command received" "UPDATE" !got

let test_fd_passing () =
  let k = fresh () in
  let received_via_passed_fd = ref "" in
  (* old process passes its listening socket to new process, which accepts
     a connection on it: the MCR inheritance mechanism. *)
  let _ =
    spawn k "old" (fun _ ->
        let lfd = expect_fd (K.syscall (S.Unix_listen { path = "/run/xfer" })) in
        let sock = expect_fd (K.syscall S.Socket) in
        ignore (K.syscall (S.Bind { fd = sock; port = 80 }));
        ignore (K.syscall (S.Listen { fd = sock; backlog = 4 }));
        let conn = expect_fd (K.syscall (S.Accept { fd = lfd; nonblock = false })) in
        ignore (K.syscall (S.Send_fd { conn; payload = sock })))
  in
  let _ =
    spawn k "new" (fun _ ->
        ignore (K.syscall (S.Nanosleep { ns = 1000 }));
        let conn = expect_fd (K.syscall (S.Unix_connect { path = "/run/xfer" })) in
        let sock = expect_fd (K.syscall (S.Recv_fd { conn; nonblock = false })) in
        let c = expect_fd (K.syscall (S.Accept { fd = sock; nonblock = false })) in
        received_via_passed_fd :=
          expect_data (K.syscall (S.Read { fd = c; max = 64; nonblock = false })))
  in
  let _ =
    spawn k "client" (fun _ ->
        let fd = connect_retry 80 in
        ignore (K.syscall (S.Write { fd; data = "to-new" })))
  in
  K.run k;
  Alcotest.(check string) "accepted on inherited socket" "to-new" !received_via_passed_fd

let test_recv_fd_at_exact_number () =
  let k = fresh () in
  let got_fd = ref 0 in
  let _ =
    spawn k "old" (fun _ ->
        let lfd = expect_fd (K.syscall (S.Unix_listen { path = "/x" })) in
        let f = expect_fd (K.syscall (S.Open { path = "/f"; create = true })) in
        let conn = expect_fd (K.syscall (S.Accept { fd = lfd; nonblock = false })) in
        ignore (K.syscall (S.Send_fd { conn; payload = f })))
  in
  let _ =
    spawn k "new" (fun _ ->
        ignore (K.syscall (S.Nanosleep { ns = 100 }));
        let conn = expect_fd (K.syscall (S.Unix_connect { path = "/x" })) in
        (match K.syscall (S.Recv_fd_at { conn; force_fd = 1234; nonblock = false }) with
        | S.Ok_fd fd -> got_fd := fd
        | r -> Alcotest.failf "recv_fd_at: %a" S.pp_result r))
  in
  K.run k;
  Alcotest.(check int) "installed at requested number" 1234 !got_fd

let test_recv_fd_at_collision () =
  let k = fresh () in
  let res = ref S.Ok_unit in
  let _ =
    spawn k "old" (fun _ ->
        let lfd = expect_fd (K.syscall (S.Unix_listen { path = "/x" })) in
        let f = expect_fd (K.syscall (S.Open { path = "/f"; create = true })) in
        let conn = expect_fd (K.syscall (S.Accept { fd = lfd; nonblock = false })) in
        ignore (K.syscall (S.Send_fd { conn; payload = f })))
  in
  let _ =
    spawn k "new" (fun _ ->
        ignore (K.syscall (S.Nanosleep { ns = 100 }));
        let conn = expect_fd (K.syscall (S.Unix_connect { path = "/x" })) in
        (* conn itself occupies a number; try to install on top of it *)
        res := K.syscall (S.Recv_fd_at { conn; force_fd = conn; nonblock = false }))
  in
  K.run k;
  Alcotest.(check bool) "EEXIST on collision" true (!res = S.Err S.EEXIST)

(* ------------------------------------------------------------------ *)
(* Reserved fd mode *)

let test_reserved_fd_mode () =
  let k = fresh () in
  let fds = ref [] in
  let _ =
    spawn k "p" (fun th ->
        let fd1 = expect_fd (K.syscall S.Socket) in
        K.set_reserved_fd_mode (K.thread_proc th) true;
        let fd2 = expect_fd (K.syscall S.Socket) in
        let fd3 = expect_fd (K.syscall S.Socket) in
        K.set_reserved_fd_mode (K.thread_proc th) false;
        let fd4 = expect_fd (K.syscall S.Socket) in
        fds := [ fd1; fd2; fd3; fd4 ])
  in
  K.run k;
  match !fds with
  | [ fd1; fd2; fd3; fd4 ] ->
      Alcotest.(check int) "normal low fd" 3 fd1;
      Alcotest.(check bool) "reserved high range" true (fd2 >= 1000);
      Alcotest.(check int) "reserved monotonic" (fd2 + 1) fd3;
      Alcotest.(check bool) "back to low range" true (fd4 < 1000)
  | _ -> Alcotest.fail "expected four fds"

(* ------------------------------------------------------------------ *)
(* Hooks: interceptor, monitor, block monitor *)

let test_interceptor_short_circuit () =
  let k = fresh () in
  let res = ref S.Ok_unit in
  let p =
    spawn k "p" (fun _ ->
        ignore (K.syscall (S.Nanosleep { ns = 10 }));
        res := K.syscall S.Socket)
  in
  K.set_interceptor p
    (Some
       (fun _ call ->
         match call with S.Socket -> K.Short_circuit (S.Ok_fd 777) | _ -> K.Execute));
  K.run k;
  Alcotest.(check bool) "short-circuited result" true (!res = S.Ok_fd 777);
  (* the fd was not actually created *)
  Alcotest.(check (list int)) "no real fd installed" [] (K.fds p)

let test_monitor_records_calls () =
  let k = fresh () in
  let log = ref [] in
  let p =
    spawn k "p" (fun _ ->
        ignore (K.syscall S.Socket);
        ignore (K.syscall S.Getpid))
  in
  K.set_monitor p (Some (fun _ call result -> log := (S.call_name call, result) :: !log));
  K.run k;
  let names = List.rev_map fst !log in
  Alcotest.(check (list string)) "both calls recorded" [ "socket"; "getpid" ] names

let test_monitor_sees_blocking_results () =
  let k = fresh () in
  let log = ref [] in
  let server =
    spawn k "server" (fun _ ->
        let fd = expect_fd (K.syscall S.Socket) in
        ignore (K.syscall (S.Bind { fd; port = 80 }));
        ignore (K.syscall (S.Listen { fd; backlog = 4 }));
        ignore (K.syscall (S.Accept { fd; nonblock = false })))
  in
  K.set_monitor server
    (Some
       (fun _ call result ->
         if S.call_name call = "accept" then log := result :: !log));
  let _ = spawn k "client" (fun _ -> ignore (connect_retry 80)) in
  K.run k;
  match !log with
  | [ S.Ok_fd _ ] -> ()
  | _ -> Alcotest.fail "accept completion not recorded"

let test_block_monitor_measures_time () =
  let k = fresh () in
  let blocked = ref 0 in
  K.set_block_monitor k
    (Some (fun _ call ~blocked_ns -> if S.call_name call = "sem_wait" then blocked := blocked_ns));
  let _ =
    spawn k "w" (fun _ -> ignore (K.syscall (S.Sem_wait { name = "s"; timeout_ns = None })))
  in
  let _ =
    spawn k "p" (fun _ ->
        ignore (K.syscall (S.Nanosleep { ns = 2_000_000 }));
        ignore (K.syscall (S.Sem_post { name = "s" })))
  in
  K.run k;
  Alcotest.(check bool) "blocked at least the sleep" true (!blocked >= 2_000_000)

(* ------------------------------------------------------------------ *)
(* Call stacks *)

let test_callstack_ids () =
  let k = fresh () in
  let ids = ref [] in
  let _ =
    spawn k "p" (fun th ->
        K.push_frame th "main";
        let id_main = K.callstack_id th in
        K.push_frame th "server_init";
        let id_init = K.callstack_id th in
        K.pop_frame th;
        let id_back = K.callstack_id th in
        ids := [ id_main; id_init; id_back ])
  in
  K.run k;
  match !ids with
  | [ a; b; c ] ->
      Alcotest.(check bool) "nested differs" true (a <> b);
      Alcotest.(check int) "pop restores" a c
  | _ -> Alcotest.fail "expected three ids"

let test_dup_shares_offset () =
  (* dup'd descriptors share the open file description (offset) *)
  let k = fresh () in
  K.fs_write k ~path:"/f" "abcdef";
  let seen = ref ("", "") in
  let _ =
    spawn k "p" (fun _ ->
        let fd = expect_fd (K.syscall (S.Open { path = "/f"; create = false })) in
        let fd2 = expect_fd (K.syscall (S.Dup { fd })) in
        let a = expect_data (K.syscall (S.Read { fd; max = 3; nonblock = false })) in
        let b = expect_data (K.syscall (S.Read { fd = fd2; max = 3; nonblock = false })) in
        seen := (a, b))
  in
  K.run k;
  Alcotest.(check (pair string string)) "offset shared" ("abc", "def") !seen

let test_close_one_dup_keeps_description () =
  let k = fresh () in
  K.fs_write k ~path:"/f" "xy";
  let got = ref "" in
  let _ =
    spawn k "p" (fun _ ->
        let fd = expect_fd (K.syscall (S.Open { path = "/f"; create = false })) in
        let fd2 = expect_fd (K.syscall (S.Dup { fd })) in
        ignore (K.syscall (S.Close { fd }));
        got := expect_data (K.syscall (S.Read { fd = fd2; max = 10; nonblock = false })))
  in
  K.run k;
  Alcotest.(check string) "dup survives close of sibling" "xy" !got

let test_poll_on_closed_fd_not_readable () =
  let k = fresh () in
  let ready = ref [ 1 ] in
  let _ =
    spawn k "p" (fun _ ->
        let fd = expect_fd (K.syscall (S.Open { path = "/nope"; create = true })) in
        ignore (K.syscall (S.Close { fd }));
        match K.syscall (S.Poll { fds = [ fd ]; timeout_ns = Some 1000; nonblock = false }) with
        | S.Ok_ready r -> ready := r
        | _ -> ())
  in
  K.run k;
  Alcotest.(check (list int)) "closed fd never ready" [] !ready

let test_run_until_respects_deadline () =
  let k = fresh () in
  let _ = spawn k "p" (fun _ -> ignore (K.syscall (S.Nanosleep { ns = 1_000_000_000 }))) in
  let hit = K.run_until k ~max_ns:(K.clock_ns k + 1_000_000) (fun () -> false) in
  Alcotest.(check bool) "predicate never held" false hit;
  Alcotest.(check bool) "clock did not run past the deadline by much" true
    (K.clock_ns k < 10_000_000)

(* charge freezes pending timers for the span (they leapfrog to its end);
   charge_concurrent dispatches them inside it — the dedicated-core
   accounting the latency bench's client processes rely on. *)
let test_charge_vs_charge_concurrent () =
  let woke_at charge =
    let k = fresh () in
    let woke = ref (-1) in
    let _ =
      spawn k "sleeper" (fun _ ->
          ignore (K.syscall (S.Nanosleep { ns = 5_000_000 }));
          woke := K.clock_ns k)
    in
    (* let the sleeper enter its sleep, then bill a 20 ms span *)
    ignore (K.run_until k ~max_ns:1_000_000 (fun () -> false));
    charge k 20_000_000;
    K.run k;
    !woke
  in
  let frozen = woke_at K.charge in
  let live = woke_at K.charge_concurrent in
  Alcotest.(check bool) "charge leapfrogs the timer to the span end" true
    (frozen >= 20_000_000);
  Alcotest.(check bool) "charge_concurrent fires the timer inside the span" true
    (live >= 5_000_000 && live < 20_000_000)

let test_transfer_fd_semantics () =
  let k = fresh () in
  K.fs_write k ~path:"/f" "shared";
  let src = spawn k "src" (fun _ -> ignore (K.syscall (S.Open { path = "/f"; create = false }))) in
  let read_result = ref "" in
  let dst =
    spawn k "dst" (fun _ ->
        ignore (K.syscall (S.Sem_wait { name = "fd.ready"; timeout_ns = None }));
        read_result := expect_data (K.syscall (S.Read { fd = 77; max = 10; nonblock = false })))
  in
  ignore (K.run_until k ~max_ns:10_000_000 (fun () -> K.fds src <> []));
  let fd = List.hd (K.fds src) in
  (match K.transfer_fd k ~src ~fd ~dst ~at:77 with
  | Ok n -> Alcotest.(check int) "installed at 77" 77 n
  | Error e -> Alcotest.failf "transfer_fd: %a" S.pp_err e);
  (* collision on second transfer *)
  (match K.transfer_fd k ~src ~fd ~dst ~at:77 with
  | Error S.EEXIST -> ()
  | _ -> Alcotest.fail "expected EEXIST");
  (match K.transfer_fd k ~src ~fd:999 ~dst ~at:78 with
  | Error S.EBADF -> ()
  | _ -> Alcotest.fail "expected EBADF");
  K.post_semaphore k "fd.ready";
  K.run k;
  Alcotest.(check string) "dst reads through the shared description" "shared" !read_result

let test_callstack_id_matches_manual_hash () =
  let k = fresh () in
  let got = ref 0 in
  let _ =
    spawn k "p" (fun th ->
        K.push_frame th "main";
        K.push_frame th "init";
        got := K.callstack_id th)
  in
  K.run k;
  Alcotest.(check int) "hash of outermost-first names" (Mcr_util.Fnv.strings [ "main"; "init" ]) !got

let test_kill_process_closes_fds_and_wakes_peer () =
  let k = fresh () in
  let eof = ref "x" in
  let victim = ref None in
  let _ =
    setup_server_client k
      ~server_body:(fun th fd ->
        victim := Some (K.thread_proc th);
        let _conn = expect_fd (K.syscall (S.Accept { fd; nonblock = false })) in
        (* park forever; will be killed *)
        ignore (K.syscall (S.Nanosleep { ns = max_int / 2 })))
      ~client_body:(fun _ ->
        let fd = connect_retry 80 in
        eof := expect_data (K.syscall (S.Read { fd; max = 10; nonblock = false })))
  in
  (* let the connection establish, then kill the server *)
  ignore (K.run_until k ~max_ns:10_000_000 (fun () -> false));
  (match !victim with Some p -> K.kill_process k p ~status:9 | None -> ());
  K.run k;
  Alcotest.(check string) "peer saw EOF after kill" "" !eof

let () =
  Alcotest.run "mcr_simos"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "runs and exits" `Quick test_process_runs_and_exits;
          Alcotest.test_case "exit syscall" `Quick test_exit_syscall;
          Alcotest.test_case "crash status" `Quick test_crash_reports_139;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "nanosleep" `Quick test_nanosleep_advances_clock;
          Alcotest.test_case "getpid/getppid" `Quick test_getpid_getppid;
          Alcotest.test_case "force pid" `Quick test_force_pid;
        ] );
      ( "sockets",
        [
          Alcotest.test_case "accept/connect/read/write" `Quick test_accept_connect_read_write;
          Alcotest.test_case "connect refused" `Quick test_connect_refused_no_listener;
          Alcotest.test_case "bind conflict" `Quick test_bind_conflict;
          Alcotest.test_case "read EOF on close" `Quick test_read_eof_on_close;
          Alcotest.test_case "EPIPE to closed peer" `Quick test_write_to_closed_peer_epipe;
          Alcotest.test_case "nonblocking EAGAIN" `Quick test_nonblocking_accept_eagain;
          Alcotest.test_case "partial reads ordered" `Quick test_partial_read_preserves_order;
          Alcotest.test_case "backlog refusal" `Quick test_backlog_refuses_when_full;
        ] );
      ( "poll",
        [
          Alcotest.test_case "ready fd" `Quick test_poll_returns_ready_fd;
          Alcotest.test_case "timeout" `Quick test_poll_timeout_empty;
          Alcotest.test_case "multiple fds" `Quick test_poll_multiple_fds;
        ] );
      ( "files",
        [
          Alcotest.test_case "read/write" `Quick test_file_read_write;
          Alcotest.test_case "missing ENOENT" `Quick test_open_missing_enoent;
          Alcotest.test_case "create and append" `Quick test_open_create_and_append;
        ] );
      ( "processes",
        [
          Alcotest.test_case "fork runs entry" `Quick test_fork_runs_entry;
          Alcotest.test_case "fork inherits fds+memory" `Quick test_fork_inherits_fds_and_memory;
          Alcotest.test_case "fork memory is a copy" `Quick test_fork_memory_is_copy;
          Alcotest.test_case "threads share memory" `Quick test_thread_create_and_shared_memory;
          Alcotest.test_case "waitpid blocks" `Quick test_waitpid_blocks_until_exit;
          Alcotest.test_case "waitpid ECHILD" `Quick test_waitpid_unknown_echild;
        ] );
      ( "semaphores",
        [
          Alcotest.test_case "wait/post" `Quick test_sem_wait_post;
          Alcotest.test_case "timeout" `Quick test_sem_timeout;
          Alcotest.test_case "counting" `Quick test_sem_counts;
        ] );
      ( "unix-fd-passing",
        [
          Alcotest.test_case "unix roundtrip" `Quick test_unix_socket_roundtrip;
          Alcotest.test_case "fd passing" `Quick test_fd_passing;
          Alcotest.test_case "recv_fd_at exact" `Quick test_recv_fd_at_exact_number;
          Alcotest.test_case "recv_fd_at collision" `Quick test_recv_fd_at_collision;
        ] );
      ( "fd-modes",
        [ Alcotest.test_case "reserved range" `Quick test_reserved_fd_mode ] );
      ( "hooks",
        [
          Alcotest.test_case "interceptor short-circuit" `Quick test_interceptor_short_circuit;
          Alcotest.test_case "monitor records" `Quick test_monitor_records_calls;
          Alcotest.test_case "monitor sees blocking results" `Quick
            test_monitor_sees_blocking_results;
          Alcotest.test_case "block monitor time" `Quick test_block_monitor_measures_time;
        ] );
      ( "callstack",
        [ Alcotest.test_case "ids" `Quick test_callstack_ids ] );
      ( "kill",
        [ Alcotest.test_case "kill closes fds" `Quick test_kill_process_closes_fds_and_wakes_peer ] );
      ( "descriptions",
        [
          Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
          Alcotest.test_case "close one dup" `Quick test_close_one_dup_keeps_description;
          Alcotest.test_case "poll closed fd" `Quick test_poll_on_closed_fd_not_readable;
          Alcotest.test_case "transfer_fd" `Quick test_transfer_fd_semantics;
        ] );
      ( "time-and-ids",
        [
          Alcotest.test_case "run_until deadline" `Quick test_run_until_respects_deadline;
          Alcotest.test_case "charge vs charge_concurrent" `Quick
            test_charge_vs_charge_concurrent;
          Alcotest.test_case "callstack hash" `Quick test_callstack_id_matches_manual_hash;
        ] );
    ]
