(* Property-based tests on MCR's core invariants (qcheck):
   - live updates preserve counters for arbitrary request interleavings;
   - mutable reinitialization replays arbitrary seeded startup sequences
     with zero conflicts and the program keeps serving afterwards;
   - transformation plans preserve same-named scalar fields under random
     struct evolutions, and are the identity on unchanged types;
   - page-aligned large allocations really are page-exclusive, and random
     malloc/free interleavings keep the heap walkable from in-band metadata;
   - soft-dirty tracking reports exactly the pages written;
   - conservative scanning finds exactly the planted pointers. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Api = Mcr_program.Api
module Ty = Mcr_types.Ty
module Typlan = Mcr_types.Typlan
module Heap = Mcr_alloc.Heap
module Manager = Mcr_core.Manager
module Objgraph = Mcr_trace.Objgraph
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr

(* ------------------------------------------------------------------ *)
(* End-to-end: counter continuity across an update *)

let serve kernel n =
  for _ = 1 to n do
    let p =
      K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"c" ~entry:"main"
        ~main:(fun _ ->
          let rec connect k =
            match K.syscall (S.Connect { port = Listing1.port }) with
            | S.Ok_fd fd -> Some fd
            | S.Err S.ECONNREFUSED when k > 0 ->
                ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
                connect (k - 1)
            | _ -> None
          in
          match connect 100 with
          | Some fd ->
              ignore (K.syscall (S.Write { fd; data = "GET /" }));
              ignore (K.syscall (S.Read { fd; max = 256; nonblock = false }))
          | None -> ())
        ()
    in
    ignore
      (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> not (K.alive p)))
  done

let count_of m =
  let image = Manager.root_image m in
  Aspace.read_word image.P.i_aspace
    (Mcr_types.Symtab.lookup image.P.i_symtab "count").Mcr_types.Symtab.addr

let prop_counter_continuity =
  QCheck.Test.make ~name:"request counter continuous across live update" ~count:8
    QCheck.(pair (int_range 0 6) (int_range 0 6))
    (fun (before, after) ->
      let kernel = K.create () in
      K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
      let m = Manager.launch kernel (Listing1.v1 ()) in
      assert (Manager.wait_startup m ());
      serve kernel before;
      let m2, report = Manager.update m (Listing1.v2 ()) in
      serve kernel after;
      report.Manager.success && count_of m2 = before + after)

let prop_rollback_preserves_count =
  QCheck.Test.make ~name:"rollback leaves the counter exactly as it was" ~count:6
    QCheck.(int_range 0 5)
    (fun before ->
      let kernel = K.create () in
      K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
      let m = Manager.launch kernel (Listing1.v1 ()) in
      assert (Manager.wait_startup m ());
      serve kernel before;
      let m', report = Manager.update m (Listing1.v2 ~variant:`Change_hidden ()) in
      (not report.Manager.success) && count_of m' = before)

(* ------------------------------------------------------------------ *)
(* Transformation plans under random struct evolution *)

let field_names = [| "a"; "b"; "c"; "d"; "e"; "f" |]

let gen_struct =
  QCheck.Gen.(
    let field = pair (oneofa field_names) (oneofl [ Ty.Int; Ty.Word ]) in
    list_size (int_range 1 6) field >|= fun fields ->
    (* unique names *)
    let seen = Hashtbl.create 8 in
    let fields =
      List.filter
        (fun (n, _) -> if Hashtbl.mem seen n then false else (Hashtbl.add seen n (); true))
        fields
    in
    Ty.Struct { sname = "s"; fields })

(* evolve: shuffle fields, drop some, add fresh ones *)
let gen_evolution =
  QCheck.Gen.(
    pair gen_struct (pair (int_range 0 100) (int_range 0 2)) >|= fun (s, (seed, extra)) ->
    match s with
    | Ty.Struct { fields; _ } ->
        let arr = Array.of_list fields in
        let rng = Mcr_util.Rng.create seed in
        Mcr_util.Rng.shuffle rng arr;
        let kept = Array.to_list arr in
        let added = List.init extra (fun i -> (Printf.sprintf "new%d" i, Ty.Int)) in
        (s, Ty.Struct { sname = "s"; fields = kept @ added })
    | _ -> assert false)

let prop_plan_preserves_named_fields =
  QCheck.Test.make ~name:"plans preserve same-named fields under evolution" ~count:300
    (QCheck.make gen_evolution) (fun (src, dst) ->
      let env = Ty.env_create () in
      match Typlan.plan ~src_env:env ~dst_env:env ~src ~dst with
      | Error _ -> false (* these evolutions are always plannable *)
      | Ok plan -> (
          match (src, dst) with
          | Ty.Struct { fields = sf; _ }, Ty.Struct { fields = df; _ } ->
              (* give every source field a distinctive value *)
              let src_vals =
                List.mapi (fun i (n, _) -> (n, 1000 + i)) sf
              in
              let src_words = Array.of_list (List.map snd src_vals) in
              let dst_words = Array.make plan.Typlan.dst_words (-1) in
              Typlan.apply plan ~read:(Array.get src_words)
                ~write:(Array.set dst_words);
              List.for_all2
                (fun (n, _) v ->
                  match List.assoc_opt n src_vals with
                  | Some expected -> v = expected (* survived field *)
                  | None -> v = 0 (* added field zeroed *))
                df
                (Array.to_list dst_words)
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Page-aligned large allocations *)

let prop_malloc_aligned =
  QCheck.Test.make ~name:"malloc_aligned yields page-exclusive payloads" ~count:100
    QCheck.(pair (int_range 256 2000) (int_range 0 20))
    (fun (big_words, small_allocs) ->
      let sp = Aspace.create () in
      let heap = Heap.create sp ~instrumented:true ~name:"h" ~size:(1 lsl 22) () in
      Heap.end_startup heap;
      (* interleave small allocations around the big one *)
      for _ = 1 to small_allocs do
        ignore (Heap.malloc heap 3)
      done;
      let big = Heap.malloc_aligned heap big_words in
      for _ = 1 to small_allocs do
        ignore (Heap.malloc heap 3)
      done;
      (* payload page-aligned, heap structurally valid, walk finds it *)
      Addr.page_offset big = 0
      && Heap.validate heap = Ok ()
      &&
      let found = ref false in
      Heap.iter_live heap (fun b -> if b.Heap.payload = big then found := true);
      !found)

let prop_aligned_block_never_shares_tail_page =
  QCheck.Test.make ~name:"subsequent allocations start after the aligned block's last page"
    ~count:100
    QCheck.(int_range 256 1500)
    (fun big_words ->
      let sp = Aspace.create () in
      let heap = Heap.create sp ~instrumented:true ~name:"h" ~size:(1 lsl 22) () in
      Heap.end_startup heap;
      let big = Heap.malloc_aligned heap big_words in
      let next = Heap.malloc heap 4 in
      let big_end = Addr.add_words big big_words in
      (* either the next allocation reused space before the block, or it
         starts past the block's extent — never inside it *)
      next >= big_end || next < big)

(* ------------------------------------------------------------------ *)
(* Conservative scanning: planted pointers are found, garbage is not *)

let prop_conservative_scan_exact =
  QCheck.Test.make ~name:"likely pointers = planted pointers" ~count:40
    QCheck.(pair (int_range 0 7) (int_range 0 100))
    (fun (planted, seed) ->
      (* a listing1 image whose opaque buffer b we fill manually *)
      let kernel = K.create () in
      K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
      let m = Manager.launch kernel (Listing1.v1 ()) in
      assert (Manager.wait_startup m ());
      let image = Manager.root_image m in
      let aspace = image.P.i_aspace in
      let symtab = image.P.i_symtab in
      let b = (Mcr_types.Symtab.lookup symtab "b").Mcr_types.Symtab.addr in
      (* collect live heap objects to point at *)
      let a0 = Objgraph.analyze image in
      let heap_objs =
        List.filter (fun (o : Objgraph.obj) -> o.Objgraph.origin = Objgraph.O_heap)
          (Objgraph.reachable_objects a0)
      in
      let rng = Mcr_util.Rng.create seed in
      (* word 0: pointer or garbage depending on [planted] bit 0; word 1:
         likewise with bit 1 — garbage values are odd (unaligned) *)
      let fill slot bit =
        if planted land bit <> 0 && heap_objs <> [] then
          let target = Mcr_util.Rng.pick rng (Array.of_list heap_objs) in
          Aspace.write_word aspace (Addr.add_words b slot) target.Objgraph.addr
        else Aspace.write_word aspace (Addr.add_words b slot) ((Mcr_util.Rng.next rng * 2) + 1)
      in
      fill 0 1;
      fill 1 2;
      let a = Objgraph.analyze image in
      let expected = (if planted land 1 <> 0 then 1 else 0) + if planted land 2 <> 0 then 1 else 0 in
      (* at least the planted ones (the server's own state may add more) *)
      a.Objgraph.stats.Objgraph.likely.Objgraph.ptr
      >= expected
      && (expected > 0 || a.Objgraph.stats.Objgraph.likely.Objgraph.ptr = 0))

(* ------------------------------------------------------------------ *)
(* Transformation plans to the identical type are the identity *)

let prop_plan_identity =
  QCheck.Test.make ~name:"plan to the identical type is the identity" ~count:200
    (QCheck.make gen_struct) (fun src ->
      let env = Ty.env_create () in
      match Typlan.plan ~src_env:env ~dst_env:env ~src ~dst:src with
      | Error _ -> false
      | Ok plan -> (
          match src with
          | Ty.Struct { fields; _ } ->
              let n = List.length fields in
              let src_words = Array.init n (fun i -> 100 + i) in
              let dst_words = Array.make plan.Typlan.dst_words (-1) in
              Typlan.apply plan ~read:(Array.get src_words) ~write:(Array.set dst_words);
              plan.Typlan.dst_words = n
              && Array.to_list dst_words = Array.to_list src_words
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Soft-dirty tracking reports exactly the pages written *)

let prop_soft_dirty_exact =
  QCheck.Test.make ~name:"soft-dirty pages = exactly the pages written" ~count:200
    QCheck.(pair (int_range 1 24) (int_range 0 1_000_000))
    (fun (nwrites, seed) ->
      let sp = Aspace.create () in
      let pages = 64 in
      let base =
        Aspace.map sp ~name:"t" (Aspace.Near Mcr_vmem.Region.Heap)
          ~size:(pages * Addr.page_size) Mcr_vmem.Region.Heap
      in
      Aspace.epoch_reset sp ~name:"startup";
      let rng = Mcr_util.Rng.create seed in
      let tracked = Hashtbl.create 16 in
      (* tracked writes land in the low half of the region... *)
      for _ = 1 to nwrites do
        let p = Mcr_util.Rng.int rng (pages / 2) in
        let w = Mcr_util.Rng.int rng Addr.words_per_page in
        Aspace.write_word sp (Addr.add base ((p * Addr.page_size) + (w * Addr.word_size))) 7;
        Hashtbl.replace tracked (Addr.add base (p * Addr.page_size)) ()
      done;
      (* ...kernel-mediated writes in the high half must never show up *)
      for _ = 1 to nwrites do
        let p = (pages / 2) + Mcr_util.Rng.int rng (pages / 2) in
        Aspace.write_word_untracked sp (Addr.add base (p * Addr.page_size)) 9
      done;
      let expected =
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tracked [])
      in
      Aspace.epoch_dirty_pages sp ~name:"startup" = expected
      && List.for_all (fun a -> Aspace.epoch_page_dirty sp ~name:"startup" a) expected
      &&
      (Aspace.epoch_reset sp ~name:"startup";
       Aspace.epoch_dirty_pages sp ~name:"startup" = []))

(* ------------------------------------------------------------------ *)
(* Random malloc/free interleavings keep the heap walkable and exact *)

let prop_heap_random_ops =
  QCheck.Test.make ~name:"random malloc/free keeps in-band metadata exact" ~count:150
    QCheck.(pair (int_range 1 120) (int_range 0 1_000_000))
    (fun (nops, seed) ->
      let sp = Aspace.create () in
      let heap = Heap.create sp ~instrumented:true ~name:"h" ~size:(1 lsl 20) () in
      Heap.end_startup heap;
      let rng = Mcr_util.Rng.create seed in
      let live = ref [] in
      let structurally_valid = ref true in
      for _ = 1 to nops do
        (if !live = [] || Mcr_util.Rng.int rng 3 > 0 then (
           let words = 1 + Mcr_util.Rng.int rng 40 in
           let p = Heap.malloc heap ~ty_id:1 ~site:2 ~callstack:3 words in
           live := (p, words) :: !live)
         else
           let p, _ = Mcr_util.Rng.pick rng (Array.of_list !live) in
           Heap.free heap p;
           live := List.filter (fun (q, _) -> q <> p) !live);
        if Heap.validate heap <> Ok () then structurally_valid := false
      done;
      (* walking the in-band headers rediscovers exactly the live payloads *)
      let found = ref [] in
      Heap.iter_live heap (fun b -> found := (b.Heap.payload, b.Heap.words) :: !found);
      !structurally_valid
      && List.sort compare (List.map fst !found) = List.sort compare (List.map fst !live)
      && List.for_all
           (fun (p, w) ->
             (* block sizes may round up (splinter absorption), never down,
                and interior pointers resolve to the right block *)
             match Heap.block_containing heap (Addr.add_words p (w - 1)) with
             | Some b -> b.Heap.payload = p && b.Heap.words >= w
             | None -> false)
           !live)

(* ------------------------------------------------------------------ *)
(* Mutable reinitialization replays arbitrary seeded startup sequences *)

let fuzz_port = 9100

(* A server whose startup performs a seeded-random sequence of recordable
   operations — transient config reads, persistent log files, extra bound
   sockets, dups, getpids — before settling into an accept loop. The same
   seed produces the same sequence in both versions, so replay must match
   every call and inherit every kept descriptor. *)
let fuzz_main ~seed ~tag t =
  Api.fn t "main" @@ fun () ->
  Api.fn t "fuzz_init" (fun () ->
      let rng = Mcr_util.Rng.create seed in
      let nops = 3 + Mcr_util.Rng.int rng 8 in
      let nport = ref 0 and nfile = ref 0 and kept = ref [] in
      for _ = 1 to nops do
        match Mcr_util.Rng.int rng 5 with
        | 0 ->
            (* transient config read: open / read / close *)
            let path = Printf.sprintf "/fuzz/cfg%d" !nfile in
            incr nfile;
            let fd = Api.sys_fd_exn t (S.Open { path; create = true }) in
            ignore (Api.sys t (S.Read { fd; max = 64; nonblock = false }));
            Api.sys_unit_exn t (S.Close { fd })
        | 1 ->
            (* log file held open across the update (immutable object) *)
            let path = Printf.sprintf "/fuzz/log%d" !nfile in
            incr nfile;
            let fd = Api.sys_fd_exn t (S.Open { path; create = true }) in
            ignore (Api.sys t (S.Write { fd; data = "boot" }));
            kept := fd :: !kept
        | 2 ->
            (* extra bound socket held open across the update *)
            let fd = Api.sys_fd_exn t S.Socket in
            Api.sys_unit_exn t (S.Bind { fd; port = 9200 + !nport });
            Api.sys_unit_exn t (S.Listen { fd; backlog = 4 });
            incr nport;
            kept := fd :: !kept
        | 3 -> ignore (Api.sys t S.Getpid)
        | _ -> (
            match !kept with
            | fd :: _ -> kept := Api.sys_fd_exn t (S.Dup { fd }) :: !kept
            | [] -> ignore (Api.sys t S.Getpid))
      done;
      (* stash the kept fds where state transfer can see them *)
      let fds = Api.global t "fds" in
      List.iteri (fun i fd -> Api.store t (Addr.add_words fds i) fd) (List.rev !kept);
      Api.store t (Api.global t "nfds") (List.length !kept);
      let sock = Api.sys_fd_exn t S.Socket in
      Api.sys_unit_exn t (S.Bind { fd = sock; port = fuzz_port });
      Api.sys_unit_exn t (S.Listen { fd = sock; backlog = 16 });
      Api.store t (Api.global t "sock") sock);
  let sock = Api.load t (Api.global t "sock") in
  Api.loop t "fuzz_loop" (fun () ->
      (match
         Api.fn t "fuzz_get_event" (fun () ->
             Api.blocking t ~qpoint:"fuzz_get_event" (S.Accept { fd = sock; nonblock = false }))
       with
      | S.Ok_fd conn ->
          (match Api.sys t (S.Read { fd = conn; max = 64; nonblock = false }) with
          | S.Ok_data _ ->
              let count = Api.load t (Api.global t "count") + 1 in
              Api.store t (Api.global t "count") count;
              ignore (Api.sys t (S.Write { fd = conn; data = Printf.sprintf "%s:%d" tag count }))
          | _ -> ());
          ignore (Api.sys t (S.Close { fd = conn }))
      | _ -> ());
      true)

let fuzz_version ~seed ~v2 () =
  P.make_version ~prog:"fuzzsrv"
    ~version_tag:(if v2 then "2.0" else "1.0")
    ~layout_bias:(if v2 then 512 else 0)
    ~tyenv:(Ty.env_create ())
    ~globals:
      [ ("fds", Ty.Array (Ty.Int, 16)); ("nfds", Ty.Int); ("sock", Ty.Int); ("count", Ty.Int) ]
    ~funcs:[ "main"; "fuzz_init"; "fuzz_get_event" ]
    ~strings:[]
    ~entries:[ ("main", fuzz_main ~seed ~tag:(if v2 then "v2" else "v1")) ]
    ~qpoints:[ ("fuzz_get_event", "accept") ]
    ()

let fuzz_request kernel =
  let reply = ref "NONE" in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"c" ~entry:"main"
      ~main:(fun _ ->
        let rec connect k =
          match K.syscall (S.Connect { port = fuzz_port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when k > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (k - 1)
          | _ -> None
        in
        match connect 100 with
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data = "GET /" }));
            match K.syscall (S.Read { fd; max = 64; nonblock = false }) with
            | S.Ok_data d -> reply := d
            | _ -> ())
        | None -> ())
      ()
  in
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> not (K.alive p)));
  !reply

let prop_replay_arbitrary_startup =
  QCheck.Test.make ~name:"replay matches arbitrary seeded startup sequences" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let kernel = K.create () in
      let m = Manager.launch kernel (fuzz_version ~seed ~v2:false ()) in
      assert (Manager.wait_startup m ());
      let r1 = fuzz_request kernel in
      let m2, report = Manager.update m (fuzz_version ~seed ~v2:true ()) in
      let r2 = fuzz_request kernel in
      ignore m2;
      (* zero conflicts, counter carried over, new version serving *)
      report.Manager.success && r1 = "v1:1" && r2 = "v2:2")

(* ------------------------------------------------------------------ *)
(* Kernel totality: random syscall sequences never crash the kernel *)

let gen_call =
  QCheck.Gen.(
    let fd = int_range 0 12 in
    oneof
      [
        return S.Socket;
        map2 (fun fd port -> S.Bind { fd; port }) fd (int_range 0 100);
        map (fun fd -> S.Listen { fd; backlog = 4 }) fd;
        map (fun fd -> S.Accept { fd; nonblock = true }) fd;
        map (fun port -> S.Connect { port }) (int_range 0 100);
        map (fun fd -> S.Read { fd; max = 16; nonblock = true }) fd;
        map2 (fun fd data -> S.Write { fd; data }) fd (string_size (int_range 0 8));
        map (fun fd -> S.Close { fd }) fd;
        map (fun path -> S.Open { path = "/" ^ path; create = true }) (string_size (int_range 0 4));
        map (fun fd -> S.Dup { fd }) fd;
        map (fun fds -> S.Poll { fds; timeout_ns = Some 100; nonblock = false })
          (list_size (int_range 0 3) fd);
        return S.Getpid;
        map (fun pid -> S.Waitpid { pid }) (int_range 0 5);
        map (fun name -> S.Sem_post { name }) (oneofl [ "a"; "b" ]);
        map (fun name -> S.Sem_wait { name; timeout_ns = Some 100 }) (oneofl [ "a"; "b" ]);
        map (fun key -> S.Shmget { key }) (int_range 0 3);
        map (fun conn -> S.Recv_fd { conn; nonblock = true }) fd;
        map2 (fun conn payload -> S.Send_fd { conn; payload }) fd fd;
      ])

let prop_kernel_totality =
  QCheck.Test.make ~name:"random syscall sequences never crash the kernel" ~count:150
    (QCheck.make QCheck.Gen.(list_size (int_range 1 25) gen_call))
    (fun calls ->
      let kernel = K.create () in
      let crashed = ref false in
      let p =
        K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"fuzz"
          ~entry:"main"
          ~main:(fun _ -> List.iter (fun c -> ignore (K.syscall c)) calls)
          ()
      in
      ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000)
                (fun () -> not (K.alive p)));
      (match K.exit_status p with Some 139 -> crashed := true | _ -> ());
      (* the process may be blocked forever (fine) but must never crash *)
      not !crashed)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_props"
    [
      ( "end-to-end",
        [
          qt prop_counter_continuity;
          qt prop_rollback_preserves_count;
          qt prop_replay_arbitrary_startup;
        ] );
      ("typlan", [ qt prop_plan_preserves_named_fields; qt prop_plan_identity ]);
      ( "heap",
        [
          qt prop_malloc_aligned;
          qt prop_aligned_block_never_shares_tail_page;
          qt prop_heap_random_ops;
        ] );
      ("vmem", [ qt prop_soft_dirty_exact ]);
      ("conservative", [ qt prop_conservative_scan_exact ]);
      ("kernel", [ qt prop_kernel_totality ]);
    ]
