(* Failure injection: updates under degraded conditions — dead workers,
   stale session tables, crashing new versions, same-version rejuvenation,
   repeated updates. The invariant throughout: the update either commits
   with a serving new version or rolls back to a serving old version. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Manager = Mcr_core.Manager
module Testbed = Mcr_workloads.Testbed
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace

let drive kernel pred =
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 120_000_000_000) pred)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rpc kernel ~port data =
  let reply = ref None in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"rpc" ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | None -> reply := Some "NOCONN"
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data }));
            match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD"))
      ()
  in
  drive kernel (fun () -> not (K.alive p));
  Option.value !reply ~default:"NONE"

(* ------------------------------------------------------------------ *)

let test_update_with_dead_worker () =
  (* the nginx worker is killed (simulated crash) before the update: the
     update must still commit, with a fresh worker from the replayed fork *)
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Nginx in
  ignore (rpc kernel ~port:(Testbed.port Testbed.Nginx) "GET /index.html");
  let worker =
    List.find (fun (im : P.image) -> K.parent_pid im.P.i_proc <> 0) (Manager.images m)
  in
  K.kill_process kernel worker.P.i_proc ~status:139;
  let m2, report = Manager.update m (Testbed.final_version Testbed.Nginx) in
  Alcotest.(check bool) "update commits despite dead worker" true report.Manager.success;
  Alcotest.(check int) "new tree complete" 2 (List.length (Manager.images m2));
  (* the request counter is lost with the dead worker (its memory died with
     it), but service continues *)
  let r = rpc kernel ~port:(Testbed.port Testbed.Nginx) "GET /index.html" in
  Alcotest.(check bool) "new version serves" true (contains r "200")

let test_update_with_stale_session_table () =
  (* vsftpd sessions that quit leave stale table entries in the master (it
     never reaps); the reinit handler re-forks for them and those processes
     exit cleanly on the dead descriptor, while live sessions survive *)
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Vsftpd in
  (* session 1: connects and quits (stale entry) *)
  let r = rpc kernel ~port:(Testbed.port Testbed.Vsftpd) "QUIT" in
  Alcotest.(check bool) "first session closed" true (contains r "220" || contains r "221");
  (* session 2: stays alive across the update *)
  let live_reply = ref None in
  let live =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"live"
      ~entry:"main"
      ~main:(fun _ ->
        match K.syscall (S.Connect { port = Testbed.port Testbed.Vsftpd }) with
        | S.Ok_fd fd -> (
            let recv () =
              match K.syscall (S.Read { fd; max = 4096; nonblock = false }) with
              | S.Ok_data d -> d
              | _ -> "ERR"
            in
            ignore (recv ());
            ignore (K.syscall (S.Write { fd; data = "USER x" }));
            ignore (recv ());
            ignore (K.syscall (S.Nanosleep { ns = 700_000_000 }));
            ignore (K.syscall (S.Write { fd; data = "STAT" }));
            live_reply := Some (recv ()))
        | _ -> live_reply := Some "NOCONN")
      ()
  in
  K.run_for kernel 100_000_000;
  let _m2, report = Manager.update m (Testbed.final_version Testbed.Vsftpd) in
  Alcotest.(check bool) "update ok with stale entry" true report.Manager.success;
  drive kernel (fun () -> not (K.alive live));
  (match !live_reply with
  | Some rep -> Alcotest.(check bool) "live session preserved" true (contains rep "cmds=2")
  | None -> Alcotest.fail "live session produced no reply")

let test_update_to_crashing_version () =
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  ignore (rpc kernel ~port:Listing1.port "GET /");
  let crashing =
    {
      (Listing1.v2 ()) with
      P.entries = [ ("main", fun _ -> failwith "segfault during startup") ];
    }
  in
  let m2, report = Manager.update m crashing in
  Alcotest.(check bool) "rolled back" false report.Manager.success;
  Alcotest.(check bool) "same manager" true (m == m2);
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "old version serves after crash rollback" true (contains r "v1:2")

let test_same_version_rejuvenation () =
  (* updating a program to itself (different layout) is the paper's
     same-version update: everything must transfer one-to-one *)
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  ignore (rpc kernel ~port:Listing1.port "GET /");
  ignore (rpc kernel ~port:Listing1.port "GET /");
  let same = { (Listing1.v1 ()) with P.layout_bias = 512 } in
  let _m2, report = Manager.update m same in
  Alcotest.(check bool) "same-version update ok" true report.Manager.success;
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "state carried over" true (contains r "v1:3")

let test_rollback_then_successful_update () =
  (* a failed attempt must not poison a subsequent good one *)
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  ignore (rpc kernel ~port:Listing1.port "GET /");
  let m, r1 = Manager.update m (Listing1.v2 ~variant:`Omit_listen ()) in
  Alcotest.(check bool) "first attempt fails" false r1.Manager.success;
  ignore (rpc kernel ~port:Listing1.port "GET /");
  let _m2, r2 = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "second attempt commits" true r2.Manager.success;
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "counter continuous through both" true (contains r "v2:3")

let test_repeated_rollbacks_stable () =
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = ref (Manager.launch kernel (Listing1.v1 ())) in
  assert (Manager.wait_startup !m ());
  for i = 1 to 4 do
    let m', r = Manager.update !m (Listing1.v2 ~variant:`Change_hidden ()) in
    Alcotest.(check bool) (Printf.sprintf "attempt %d fails" i) false r.Manager.success;
    m := m';
    let rep = rpc kernel ~port:Listing1.port "GET /" in
    Alcotest.(check bool)
      (Printf.sprintf "still serving after rollback %d" i)
      true
      (contains rep (Printf.sprintf "v1:%d" i))
  done

let test_update_of_stale_manager_fails_cleanly () =
  (* after a successful update, the OLD manager is stale: updating it must
     fail with a report and touch nothing *)
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  let m2, r1 = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "first update ok" true r1.Manager.success;
  let m3, r2 = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "stale manager rejected" false r2.Manager.success;
  Alcotest.(check (option string)) "clear reason" (Some "program is not running")
    (Option.map Mcr_error.to_string r2.Manager.failure);
  Alcotest.(check bool) "nothing disturbed" true (m3 == m);
  (* the real (new) manager keeps serving *)
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "live version unaffected" true (contains r "v2:1");
  ignore m2

let test_quiescence_timeout_rolls_back () =
  (* a program whose long-lived thread never passes a quiescence hook
     (no instrumented quiescent points reachable) cannot be checkpointed:
     the update must fail with a convergence error and leave it running *)
  let kernel = K.create () in
  let tyenv = Mcr_types.Ty.env_create () in
  let stubborn tag =
    Mcr_program.Progdef.make_version ~prog:"stubborn" ~version_tag:tag
      ~layout_bias:(if tag = "1" then 0 else 512)
      ~tyenv ~globals:[ ("g", Mcr_types.Ty.Int) ] ~funcs:[ "main" ] ~strings:[]
      ~entries:
        [
          ( "main",
            fun t ->
              Mcr_program.Api.fn t "main" @@ fun () ->
              (* registers at the barrier once, then never re-checks the
                 hook: parked in a plain (unwrapped) call forever *)
              ignore
                (Mcr_program.Api.blocking t ~qpoint:"w"
                   (S.Sem_wait { name = "stubborn.go"; timeout_ns = Some 1_000 }));
              ignore (K.syscall (S.Sem_wait { name = "stubborn.never"; timeout_ns = None }))
          );
        ]
      ~qpoints:[ ("w", "sem_wait") ] ()
  in
  let m = Manager.launch kernel (stubborn "1") in
  assert (Manager.wait_startup m ());
  (* let it move past the wrapped call into the unwrapped one *)
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 100_000_000) (fun () -> false));
  let m2, report = Manager.update m (stubborn "2") in
  Alcotest.(check bool) "update fails" false report.Manager.success;
  Alcotest.(check (option string)) "convergence failure"
    (Some "quiescence did not converge")
    (Option.map Mcr_error.to_string report.Manager.failure);
  Alcotest.(check bool) "program still alive" true (K.alive (Manager.root_proc m2))

let test_update_quiesces_under_load () =
  (* a stream of clients keeps arriving while the update runs: quiescence
     must still converge (in-flight events drain; queued ones wait) *)
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Nginx in
  let stop = ref false in
  let served = ref 0 in
  let rec spawn_stream i =
    if not !stop && i < 200 then
      ignore
        (K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"streamer"
           ~entry:"main"
           ~main:(fun _ ->
             (match K.syscall (S.Connect { port = Testbed.port Testbed.Nginx }) with
             | S.Ok_fd fd -> (
                 ignore (K.syscall (S.Write { fd; data = "GET /index.html" }));
                 (match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
                 | S.Ok_data d when contains d "200" -> incr served
                 | _ -> ());
                 ignore (K.syscall (S.Close { fd })))
             | _ -> ());
             ignore (K.syscall (S.Nanosleep { ns = 2_000_000 }));
             spawn_stream (i + 1))
           ())
  in
  spawn_stream 0;
  K.run_for kernel 50_000_000;
  let _m2, report = Manager.update m (Testbed.final_version Testbed.Nginx) in
  stop := true;
  Alcotest.(check bool) "update commits under load" true report.Manager.success;
  Alcotest.(check bool) "quiescence converged under load" true
    (report.Manager.quiesce_ns < 1_000_000_000);
  drive kernel (fun () -> K.quiescent_system kernel || !served > 60);
  Alcotest.(check bool) "clients kept being served" true (!served > 10)

let () =
  Alcotest.run "mcr_failures"
    [
      ( "degraded",
        [
          Alcotest.test_case "dead worker" `Quick test_update_with_dead_worker;
          Alcotest.test_case "stale session table" `Quick test_update_with_stale_session_table;
          Alcotest.test_case "crashing new version" `Quick test_update_to_crashing_version;
        ] );
      ( "sequences",
        [
          Alcotest.test_case "same-version rejuvenation" `Quick test_same_version_rejuvenation;
          Alcotest.test_case "rollback then success" `Quick test_rollback_then_successful_update;
          Alcotest.test_case "repeated rollbacks" `Quick test_repeated_rollbacks_stable;
          Alcotest.test_case "update under load" `Quick test_update_quiesces_under_load;
          Alcotest.test_case "stale manager rejected" `Quick
            test_update_of_stale_manager_fails_cleanly;
          Alcotest.test_case "quiescence timeout" `Slow test_quiescence_timeout_rolls_back;
        ] );
    ]
