(* Unit tests for Mcr_quiesce: the barrier synchronization protocol and the
   quiescence profiler. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Barrier = Mcr_quiesce.Barrier
module Profiler = Mcr_quiesce.Profiler
module Aspace = Mcr_vmem.Aspace

let spawn kernel name body =
  (* the entry name is the thread-class name the profiler reports *)
  K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name ~entry:name
    ~main:body ()

let drive kernel pred =
  K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) pred

(* a worker loop that checks the barrier hook between "work" slices, like
   an unblockified blocking call does *)
let worker_loop barrier iterations_done =
  let rec go () =
    let parked = Barrier.hook barrier in
    ignore parked;
    incr iterations_done;
    ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
    go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Barrier *)

let test_hook_noop_when_not_requested () =
  let kernel = K.create () in
  let parked = ref None in
  let _ =
    spawn kernel "t" (fun _ ->
        let b = Barrier.create kernel ~pid:1 in
        Barrier.register_thread b;
        parked := Some (Barrier.hook b))
  in
  K.run kernel;
  Alcotest.(check (option bool)) "no park without request" (Some false) !parked

let test_barrier_full_cycle () =
  let kernel = K.create () in
  let b = Barrier.create kernel ~pid:7 in
  let iters = ref 0 in
  let p =
    spawn kernel "w" (fun _ ->
        Barrier.register_thread b;
        worker_loop b iters)
  in
  (* let the worker spin a bit *)
  K.run_for kernel 10_000_000;
  Alcotest.(check bool) "not quiesced before request" false (Barrier.quiesced b);
  Barrier.request b;
  Alcotest.(check bool) "converges" true (drive kernel (fun () -> Barrier.quiesced b));
  let before = !iters in
  (* parked: no iterations happen while quiescent *)
  K.run_for kernel 50_000_000;
  Alcotest.(check int) "no work while parked" before !iters;
  Barrier.release b;
  Alcotest.(check bool) "resumes" true (drive kernel (fun () -> !iters > before));
  Alcotest.(check bool) "no longer quiesced" false (Barrier.quiesced b);
  K.kill_process kernel p ~status:0

let test_barrier_multiple_threads () =
  let kernel = K.create () in
  let b = Barrier.create kernel ~pid:8 in
  let procs =
    List.init 4 (fun i ->
        spawn kernel
          (Printf.sprintf "w%d" i)
          (fun _ ->
            Barrier.register_thread b;
            worker_loop b (ref 0)))
  in
  K.run_for kernel 5_000_000;
  Alcotest.(check int) "four registered" 4 (Barrier.registered b);
  Barrier.request b;
  Alcotest.(check bool) "all four arrive" true (drive kernel (fun () -> Barrier.quiesced b));
  Alcotest.(check int) "arrived = registered" 4 (Barrier.arrived b);
  Barrier.release b;
  K.run_for kernel 5_000_000;
  Alcotest.(check int) "departed" 0 (Barrier.arrived b);
  List.iter (fun p -> K.kill_process kernel p ~status:0) procs

let test_barrier_reusable_across_episodes () =
  let kernel = K.create () in
  let b = Barrier.create kernel ~pid:9 in
  let p =
    spawn kernel "w" (fun _ ->
        Barrier.register_thread b;
        worker_loop b (ref 0))
  in
  for _ = 1 to 3 do
    Barrier.request b;
    Alcotest.(check bool) "converges" true (drive kernel (fun () -> Barrier.quiesced b));
    Barrier.release b;
    K.run_for kernel 5_000_000
  done;
  K.kill_process kernel p ~status:0

let test_barrier_cancel () =
  let kernel = K.create () in
  let b = Barrier.create kernel ~pid:10 in
  let iters = ref 0 in
  let p =
    spawn kernel "w" (fun _ ->
        Barrier.register_thread b;
        worker_loop b iters)
  in
  K.run_for kernel 5_000_000;
  Barrier.request b;
  ignore (drive kernel (fun () -> Barrier.quiesced b));
  Barrier.cancel b;
  Alcotest.(check bool) "request withdrawn" false (Barrier.requested b);
  let before = !iters in
  Alcotest.(check bool) "worker resumed after cancel" true
    (drive kernel (fun () -> !iters > before));
  K.kill_process kernel p ~status:0

let test_deregister_lowers_target () =
  let kernel = K.create () in
  let b = Barrier.create kernel ~pid:11 in
  Barrier.register_thread b;
  Barrier.register_thread b;
  Barrier.deregister_thread b;
  Alcotest.(check int) "one left" 1 (Barrier.registered b);
  (* a barrier with no registered threads is trivially quiescent *)
  Barrier.deregister_thread b;
  Barrier.request b;
  Alcotest.(check bool) "empty barrier quiesces" true (Barrier.quiesced b)

(* ------------------------------------------------------------------ *)
(* Profiler *)

let test_profiler_identifies_blocking_site () =
  let kernel = K.create () in
  let prof = Profiler.create kernel in
  Profiler.attach prof;
  let _w =
    spawn kernel "srv" (fun th ->
        Profiler.note_thread_start prof th;
        K.push_frame th "serve_loop";
        let rec go n =
          if n > 0 then begin
            ignore (K.syscall (S.Sem_wait { name = "work"; timeout_ns = None }));
            go (n - 1)
          end
        in
        go 3)
  in
  let _poster =
    spawn kernel "post" (fun _ ->
        for _ = 1 to 3 do
          ignore (K.syscall (S.Nanosleep { ns = 10_000_000 }));
          ignore (K.syscall (S.Sem_post { name = "work" }))
        done)
  in
  K.run kernel;
  Profiler.detach prof;
  let r = Profiler.report prof in
  let srv = List.find (fun c -> c.Profiler.cls = "srv") r.Profiler.classes in
  (match srv.Profiler.quiescent_point with
  | Some q ->
      Alcotest.(check string) "site" "serve_loop" q.Profiler.site;
      Alcotest.(check string) "call" "sem_wait" q.Profiler.call;
      Alcotest.(check int) "three waits observed" 3 q.Profiler.hits;
      Alcotest.(check bool) "blocked time accumulated" true (q.Profiler.blocked_ns > 0)
  | None -> Alcotest.fail "no quiescent point found")

let test_profiler_short_vs_long_lived () =
  let kernel = K.create () in
  let prof = Profiler.create kernel in
  Profiler.attach prof;
  let _short =
    spawn kernel "short" (fun th ->
        Profiler.note_thread_start prof th;
        ignore (K.syscall (S.Nanosleep { ns = 1_000 }));
        Profiler.note_thread_end prof th)
  in
  let _long =
    spawn kernel "long" (fun th ->
        Profiler.note_thread_start prof th;
        ignore (K.syscall (S.Sem_wait { name = "never"; timeout_ns = None })))
  in
  ignore (drive kernel (fun () -> K.quiescent_system kernel));
  Profiler.detach prof;
  let r = Profiler.report prof in
  Alcotest.(check int) "one short-lived class" 1 r.Profiler.short_lived;
  Alcotest.(check int) "one long-lived class" 1 r.Profiler.long_lived_count

let test_profiler_samples_never_resumed_blocks () =
  (* a thread that blocks once and never resumes must still yield a
     quiescent point (the sampling view) *)
  let kernel = K.create () in
  let prof = Profiler.create kernel in
  Profiler.attach prof;
  let _t =
    spawn kernel "stuck" (fun th ->
        Profiler.note_thread_start prof th;
        K.push_frame th "wait_forever";
        ignore (K.syscall (S.Sem_wait { name = "never2"; timeout_ns = None })))
  in
  K.run kernel;
  Profiler.detach prof;
  let r = Profiler.report prof in
  Alcotest.(check int) "qpoint found by sampling" 1 r.Profiler.quiescent_points;
  match Profiler.suggested_qpoints r with
  | [ (site, call) ] ->
      Alcotest.(check string) "site" "wait_forever" site;
      Alcotest.(check string) "call" "sem_wait" call
  | other -> Alcotest.failf "expected one qpoint, got %d" (List.length other)

let test_profiler_loop_detection () =
  let kernel = K.create () in
  let prof = Profiler.create kernel in
  Profiler.attach prof;
  let _t =
    spawn kernel "looper" (fun th ->
        Profiler.note_thread_start prof th;
        (* a short-lived inner loop and a never-terminating outer loop *)
        Profiler.note_loop_enter prof th "outer";
        Profiler.note_loop_enter prof th "inner";
        Profiler.note_loop_exit prof th "inner";
        ignore (K.syscall (S.Sem_wait { name = "never3"; timeout_ns = None })))
  in
  K.run kernel;
  Profiler.detach prof;
  let r = Profiler.report prof in
  let c = List.find (fun c -> c.Profiler.cls = "looper") r.Profiler.classes in
  Alcotest.(check (list string)) "outer loop never exits" [ "outer" ]
    c.Profiler.long_lived_loops

let test_profiler_filter () =
  let kernel = K.create () in
  let prof = Profiler.create kernel in
  Profiler.set_filter prof (fun th -> K.thread_name th <> "noise");
  Profiler.attach prof;
  let _noise =
    spawn kernel "noise" (fun _ ->
        ignore (K.syscall (S.Sem_wait { name = "never4"; timeout_ns = None })))
  in
  let _real =
    spawn kernel "real" (fun th ->
        Profiler.note_thread_start prof th;
        ignore (K.syscall (S.Sem_wait { name = "never5"; timeout_ns = None })))
  in
  K.run kernel;
  Profiler.detach prof;
  let r = Profiler.report prof in
  Alcotest.(check bool) "filtered thread absent" true
    (not (List.exists (fun c -> c.Profiler.cls = "noise") r.Profiler.classes));
  Alcotest.(check bool) "kept thread present" true
    (List.exists (fun c -> c.Profiler.cls = "real") r.Profiler.classes)

let () =
  Alcotest.run "mcr_quiesce"
    [
      ( "barrier",
        [
          Alcotest.test_case "hook noop without request" `Quick test_hook_noop_when_not_requested;
          Alcotest.test_case "full cycle" `Quick test_barrier_full_cycle;
          Alcotest.test_case "multiple threads" `Quick test_barrier_multiple_threads;
          Alcotest.test_case "reusable across episodes" `Quick
            test_barrier_reusable_across_episodes;
          Alcotest.test_case "cancel" `Quick test_barrier_cancel;
          Alcotest.test_case "deregister" `Quick test_deregister_lowers_target;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "identifies blocking site" `Quick
            test_profiler_identifies_blocking_site;
          Alcotest.test_case "short vs long lived" `Quick test_profiler_short_vs_long_lived;
          Alcotest.test_case "samples never-resumed blocks" `Quick
            test_profiler_samples_never_resumed_blocks;
          Alcotest.test_case "loop detection" `Quick test_profiler_loop_detection;
          Alcotest.test_case "filter" `Quick test_profiler_filter;
        ] );
    ]
