(* Iterative pre-copy state transfer, proved three ways: deterministic
   units (stage order, convergence policy, report/metric shape, the
   versioned control protocol and the consolidated Policy record), a
   byte-identity property (a pre-copied update with mutations between
   rounds commits exactly the image the single-shot transfer would have
   produced), and a fault property (mid-pre-copy injected faults still
   satisfy the PR 2 rollback guarantee). *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Ctl = Mcr_core.Ctl
module Fault = Mcr_fault.Fault
module Metrics = Mcr_obs.Metrics
module Testbed = Mcr_workloads.Testbed
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr

let drive kernel pred =
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 120_000_000_000) pred)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rpc kernel ~port data =
  let reply = ref None in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"rpc" ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | None -> reply := Some "NOCONN"
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data }));
            match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD"))
      ()
  in
  drive kernel (fun () -> not (K.alive p));
  Option.value !reply ~default:"NONE"

let launch_listing1 kernel =
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  ignore (rpc kernel ~port:Listing1.port "GET /");
  m

let precopy_policy ?(max_rounds = 4) ?(threshold_words = 100_000) () =
  Policy.with_precopy ~max_rounds ~threshold_words true Policy.default

(* Byte-identity digest of an address space (same fold as test_fault). *)
let aspace_digest asp =
  List.fold_left
    (fun h (r : Mcr_vmem.Region.t) ->
      let words = r.Mcr_vmem.Region.size / Addr.word_size in
      let rec go h i =
        if i >= words then h
        else
          let a = Addr.add_words r.Mcr_vmem.Region.base i in
          let h =
            if Aspace.is_mapped_word asp a then (h * 1_000_003) + Aspace.read_word asp a
            else h * 31
          in
          go h (i + 1)
      in
      go h 0)
    17 (Aspace.regions asp)

let program_digest m =
  List.map (fun (im : P.image) -> aspace_digest im.P.i_aspace) (Manager.images m)

let alive_pids kernel =
  List.filter_map (fun p -> if K.alive p then Some (K.pid p) else None) (K.procs kernel)
  |> List.sort compare

(* A mutator client pre-spawned before the update in BOTH runs of the
   byte-identity property, so process/descriptor allocation is identical
   whether its requests land before the update (single-shot run) or between
   pre-copy rounds. Each semaphore post triggers one connect/request/close
   cycle. *)
let mutator_sem = "test.precopy.mutator"

let spawn_mutator kernel ~served =
  ignore
    (K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"mutator"
       ~entry:"main"
       ~main:(fun _ ->
         let rec loop () =
           ignore (K.syscall (S.Sem_wait { name = mutator_sem; timeout_ns = None }));
           let rec connect n =
             match K.syscall (S.Connect { port = Listing1.port }) with
             | S.Ok_fd fd -> Some fd
             | S.Err S.ECONNREFUSED when n > 0 ->
                 ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
                 connect (n - 1)
             | _ -> None
           in
           (match connect 100 with
           | Some fd ->
               ignore (K.syscall (S.Write { fd; data = "GET /" }));
               ignore (K.syscall (S.Read { fd; max = 65536; nonblock = false }));
               ignore (K.syscall (S.Close { fd }));
               incr served
           | None -> ());
           loop ()
         in
         loop ())
       ())

let fire_triggers kernel ~served n =
  for _ = 1 to n do
    let target = !served + 1 in
    K.post_semaphore kernel mutator_sem;
    ignore
      (K.run_until kernel
         ~max_ns:(K.clock_ns kernel + 10_000_000_000)
         (fun () -> !served >= target))
  done

(* ------------------------------------------------------------------ *)
(* Deterministic units *)

let test_precopy_commit_preserves_state () =
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  ignore (rpc kernel ~port:Listing1.port "GET /");
  let m2, report = Manager.update m ~policy:(precopy_policy ()) (Listing1.v2 ()) in
  Alcotest.(check bool) "committed" true report.Manager.success;
  Alcotest.(check bool) "rounds recorded" true (report.Manager.precopy_rounds >= 2);
  Alcotest.(check bool) "bytes staged" true (report.Manager.precopy_bytes > 0);
  Alcotest.(check bool) "downtime positive" true (report.Manager.downtime_ns > 0);
  Alcotest.(check bool) "downtime < total" true
    (report.Manager.downtime_ns < report.Manager.total_ns);
  (* state carried over: two pre-update requests -> third reply counts 3 *)
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "new version serves with transferred state" true (contains r "v2:3");
  ignore m2

let test_single_shot_report_shape () =
  (* with pre-copy disabled the whole update is the window *)
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let _, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "committed" true report.Manager.success;
  Alcotest.(check int) "no rounds" 0 report.Manager.precopy_rounds;
  Alcotest.(check int) "no staged bytes" 0 report.Manager.precopy_bytes;
  Alcotest.(check int) "downtime = total" report.Manager.total_ns report.Manager.downtime_ns

let test_metrics_present_in_every_snapshot () =
  (* the acceptance criterion: mcr_update_downtime_ns and mcr_precopy_rounds
     appear in every Manager.report snapshot, pre-copy or not *)
  let check_snapshot label snap =
    Alcotest.(check bool) (label ^ ": downtime histogram present") true
      (Metrics.find_histogram snap "mcr_update_downtime_ns" <> None);
    Alcotest.(check bool) (label ^ ": rounds histogram present") true
      (Metrics.find_histogram snap "mcr_precopy_rounds" <> None);
    Alcotest.(check bool) (label ^ ": bytes counter present") true
      (Metrics.find_counter snap "mcr_precopy_bytes_total" <> None)
  in
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let m2, r1 = Manager.update m (Listing1.v2 ()) in
  check_snapshot "single-shot" r1.Manager.metrics;
  let _, r2 = Manager.update m2 ~policy:(precopy_policy ()) (Listing1.v2 ()) in
  check_snapshot "precopy" r2.Manager.metrics;
  Alcotest.(check bool) "precopy bytes counted" true
    (match Metrics.find_counter r2.Manager.metrics "mcr_precopy_bytes_total" with
    | Some n -> n > 0
    | None -> false)

let test_divergence_rolls_back () =
  (* a zero-word threshold with a mutation after every round can never
     converge: the update must roll back with the dedicated reason, leaving
     the old version intact *)
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let m2, report =
    Manager.update m
      ~policy:(precopy_policy ~max_rounds:2 ~threshold_words:0 ())
      ~on_precopy_round:(fun _ -> ignore (rpc kernel ~port:Listing1.port "GET /"))
      (Listing1.v2 ())
  in
  Alcotest.(check bool) "rolled back" false report.Manager.success;
  Alcotest.(check bool) "same manager" true (m == m2);
  Alcotest.(check (option string)) "exact reason" (Some "precopy did not converge")
    (Option.map Mcr_error.to_string report.Manager.failure);
  Alcotest.(check int) "round budget honoured" 2 report.Manager.precopy_rounds;
  Alcotest.(check (option int)) "per-reason counter" (Some 1)
    (Metrics.find_counter report.Manager.metrics
       "mcr_rollback_reason_precopy_did_not_converge_total");
  (* divergence is detected before the window opens: zero downtime *)
  Alcotest.(check int) "no downtime on pre-window failure" 0 report.Manager.downtime_ns;
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "old version serves" true (contains r "v1:");
  let _, clean = Manager.update m2 (Listing1.v2 ()) in
  Alcotest.(check bool) "clean single-shot commits afterwards" true clean.Manager.success

let test_single_round_precopy_commits () =
  (* max_rounds = 1 is one speculative bulk round with no convergence
     check — it must commit, not diverge *)
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let _, report =
    Manager.update m ~policy:(precopy_policy ~max_rounds:1 ~threshold_words:0 ())
      (Listing1.v2 ())
  in
  Alcotest.(check bool) "committed" true report.Manager.success;
  Alcotest.(check int) "exactly one round" 1 report.Manager.precopy_rounds

let test_policy_builders () =
  let p = Policy.default in
  Alcotest.(check bool) "default precopy off" false p.Policy.precopy;
  Alcotest.(check int) "default retries" 0 p.Policy.retries;
  Alcotest.(check bool) "default dirty_only" true p.Policy.dirty_only;
  let p2 = Policy.with_precopy ~max_rounds:7 ~threshold_words:64 true p in
  Alcotest.(check bool) "precopy on" true p2.Policy.precopy;
  Alcotest.(check int) "max rounds" 7 p2.Policy.precopy_max_rounds;
  Alcotest.(check int) "threshold" 64 p2.Policy.precopy_threshold_words;
  let p3 = Policy.with_deadlines ~quiesce_ns:(Some 1) ~update_ns:None p2 in
  Alcotest.(check (option int)) "quiesce deadline" (Some 1) p3.Policy.quiesce_deadline_ns;
  Alcotest.(check (option int)) "update deadline" None p3.Policy.update_deadline_ns;
  Alcotest.check_raises "max_rounds = 0 rejected"
    (Invalid_argument "Policy.with_precopy: max_rounds must be >= 1") (fun () ->
      ignore (Policy.with_precopy ~max_rounds:0 true p));
  Alcotest.check_raises "negative retries rejected"
    (Invalid_argument "Policy.with_retries: negative count") (fun () ->
      ignore (Policy.with_retries (-1) p))

let test_error_vocabulary () =
  (* every reason round-trips through its frozen string, and metric names
     are plain prometheus identifiers *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        ("round-trip " ^ Mcr_error.to_string r)
        true
        (Mcr_error.of_string (Mcr_error.to_string r) = Some r);
      let mn = Mcr_error.metric_name r in
      Alcotest.(check bool) ("metric name clean " ^ mn) true
        (String.for_all
           (fun c -> (c >= 'a' && c <= 'z') || c = '_' || (c >= '0' && c <= '9'))
           mn))
    Mcr_error.all

(* ------------------------------------------------------------------ *)
(* The versioned control protocol *)

let test_ctl_hello () =
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let path = Manager.ctl_path m in
  let result = ref None in
  let ask f =
    result := None;
    f ();
    drive kernel (fun () -> !result <> None)
  in
  (* bare handshake *)
  ask (fun () -> Ctl.hello kernel ~path ~on_result:(fun r -> result := Some r) ());
  (match !result with
  | Some (Ok v) -> Alcotest.(check string) "server speaks v1" "1" v
  | _ -> Alcotest.fail "hello failed");
  (* version mismatch is a typed error carrying the server's version *)
  ask (fun () ->
      Ctl.hello kernel ~version:99 ~path ~on_result:(fun r -> result := Some r) ());
  (match !result with
  | Some (Error (Ctl.Version_mismatch { client; server })) ->
      Alcotest.(check int) "client version echoed" 99 client;
      Alcotest.(check int) "server version reported" 1 server
  | _ -> Alcotest.fail "expected Version_mismatch");
  (* versioned STATS: uniform OK frame with the rendered snapshot payload *)
  ask (fun () ->
      Ctl.request_v kernel ~path ~command:"STATS" ~on_result:(fun r -> result := Some r) ());
  (match !result with
  | Some (Ok payload) ->
      Alcotest.(check bool) "payload is the metrics render" true
        (contains payload "mcr_updates_total")
  | _ -> Alcotest.fail "versioned STATS failed");
  (* versioned unknown command: a typed refusal, not a bare ERR *)
  ask (fun () ->
      Ctl.request_v kernel ~path ~command:"BOGUS" ~on_result:(fun r -> result := Some r) ());
  (match !result with
  | Some (Error (Ctl.Refused reason)) ->
      Alcotest.(check string) "refusal reason" "unknown command" reason
  | _ -> Alcotest.fail "expected Refused")

let test_ctl_precopy_knob () =
  (* PRECOPY ON over the socket arms pre-copy for the next update *)
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let path = Manager.ctl_path m in
  let reply = ref None in
  Ctl.request_precopy kernel ~path ~enabled:true ~max_rounds:3 ~threshold_words:100_000
    ~on_reply:(fun r -> reply := Some r)
    ();
  drive kernel (fun () -> !reply <> None);
  Alcotest.(check (option string)) "PRECOPY ON acknowledged" (Some "OK") !reply;
  Alcotest.(check bool) "policy updated" true (Manager.policy m).Policy.precopy;
  Alcotest.(check int) "rounds knob" 3 (Manager.policy m).Policy.precopy_max_rounds;
  let _, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update committed" true report.Manager.success;
  Alcotest.(check bool) "pre-copy actually ran" true (report.Manager.precopy_rounds >= 1);
  (* and OFF disarms it *)
  reply := None;
  Ctl.request_precopy kernel ~path ~enabled:false ~on_reply:(fun r -> reply := Some r) ();
  drive kernel (fun () -> !reply <> None);
  Alcotest.(check (option string)) "PRECOPY OFF acknowledged" (Some "OK") !reply;
  Alcotest.(check bool) "policy cleared" false (Manager.policy m).Policy.precopy

(* ------------------------------------------------------------------ *)
(* Byte identity: pre-copy must commit the single-shot image *)

let test_four_servers_byte_identical () =
  (* no mutation between rounds: the committed image must be exactly the
     single-shot one for every evaluated server *)
  List.iter
    (fun server ->
      let run policy =
        let kernel = K.create () in
        let m = Testbed.launch kernel server in
        let m2, report = Manager.update m ?policy (Testbed.final_version server) in
        Alcotest.(check bool) (Testbed.name server ^ ": committed") true
          report.Manager.success;
        (program_digest m2, report)
      in
      let d_precopy, rp = run (Some (precopy_policy ())) in
      let d_single, _ = run None in
      Alcotest.(check bool) (Testbed.name server ^ ": pre-copy ran") true
        (rp.Manager.precopy_rounds >= 1);
      Alcotest.(check (list int))
        (Testbed.name server ^ ": committed image byte-identical")
        d_single d_precopy)
    Testbed.all

let prop_precopy_byte_identical =
  QCheck.Test.make ~name:"precopy with inter-round mutation = single-shot image" ~count:25
    QCheck.(pair (int_range 0 3) (int_range 0 2))
    (fun (pre, per_round) ->
      (* one run with pre-copy, mutating the still-serving old version
         between rounds; one single-shot run applying the same total
         mutation count up front; the committed images must agree *)
      let precopy_run () =
        let kernel = K.create () in
        let m = launch_listing1 kernel in
        let served = ref 0 in
        spawn_mutator kernel ~served;
        fire_triggers kernel ~served pre;
        let fired = ref 0 in
        let m2, report =
          Manager.update m ~policy:(precopy_policy ())
            ~on_precopy_round:(fun _ ->
              fire_triggers kernel ~served per_round;
              fired := !fired + per_round)
            (Listing1.v2 ())
        in
        (report.Manager.success, !fired, program_digest m2)
      in
      let single_shot_run total =
        let kernel = K.create () in
        let m = launch_listing1 kernel in
        let served = ref 0 in
        spawn_mutator kernel ~served;
        fire_triggers kernel ~served (pre + total);
        let m2, report = Manager.update m (Listing1.v2 ()) in
        (report.Manager.success, program_digest m2)
      in
      let ok_a, fired, digest_a = precopy_run () in
      let ok_b, digest_b = single_shot_run fired in
      if not (ok_a && ok_b && digest_a = digest_b) then
        QCheck.Test.fail_reportf
          "pre=%d per_round=%d fired=%d ok_precopy=%b ok_single=%b identical=%b" pre
          per_round fired ok_a ok_b (digest_a = digest_b)
      else true)

(* ------------------------------------------------------------------ *)
(* Mid-pre-copy faults keep the rollback guarantee *)

let prop_precopy_rollback_guarantee =
  let servers = Array.of_list Testbed.all in
  QCheck.Test.make ~name:"faults under precopy never break the old version" ~count:48
    QCheck.(pair (int_range 0 (Array.length servers - 1)) (int_range 0 1_000_000))
    (fun (si, seed) ->
      let server = servers.(si) in
      let kernel = K.create () in
      let m = Testbed.launch kernel server in
      let old_root = Manager.root_proc m in
      let old_image = Manager.root_image m in
      let pre_digest = aspace_digest old_image.P.i_aspace in
      let pre_pids = alive_pids kernel in
      let pre_fds = K.fds old_root in
      let fault = Fault.of_seed seed in
      let policy =
        precopy_policy ()
        |> Policy.with_deadlines ~quiesce_ns:(Some 3_000_000_000)
             ~update_ns:(Some 30_000_000_000)
      in
      let m2, report =
        Manager.update m ~policy ~fault (Testbed.final_version server)
      in
      if report.Manager.success then K.alive (Manager.root_proc m2)
      else begin
        let ok_alive = K.alive old_root in
        let ok_digest = aspace_digest old_image.P.i_aspace = pre_digest in
        let ok_fds = K.fds old_root = pre_fds in
        let post_pids = alive_pids kernel in
        let ok_no_leak = List.for_all (fun p -> List.mem p pre_pids) post_pids in
        let _, clean = Manager.update m2 (Testbed.final_version server) in
        if not (ok_alive && ok_digest && ok_fds && ok_no_leak && clean.Manager.success)
        then
          QCheck.Test.fail_reportf
            "server=%s seed=%d reason=%s alive=%b digest=%b fds=%b leak=%b clean=%b"
            (Testbed.name server) seed
            (Option.fold ~none:"<none>" ~some:Mcr_error.to_string report.Manager.failure)
            ok_alive ok_digest ok_fds (not ok_no_leak) clean.Manager.success
        else true
      end)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_precopy"
    [
      ( "stages",
        [
          Alcotest.test_case "commit preserves state" `Quick
            test_precopy_commit_preserves_state;
          Alcotest.test_case "single-shot report shape" `Quick test_single_shot_report_shape;
          Alcotest.test_case "metrics in every snapshot" `Quick
            test_metrics_present_in_every_snapshot;
          Alcotest.test_case "divergence rolls back" `Quick test_divergence_rolls_back;
          Alcotest.test_case "single-round precopy commits" `Quick
            test_single_round_precopy_commits;
        ] );
      ( "api",
        [
          Alcotest.test_case "policy builders" `Quick test_policy_builders;
          Alcotest.test_case "error vocabulary" `Quick test_error_vocabulary;
          Alcotest.test_case "ctl hello" `Quick test_ctl_hello;
          Alcotest.test_case "ctl precopy knob" `Quick test_ctl_precopy_knob;
        ] );
      ( "identity",
        [
          Alcotest.test_case "four servers byte-identical" `Slow
            test_four_servers_byte_identical;
          qt prop_precopy_byte_identical;
        ] );
      ("faults", [ qt prop_precopy_rollback_guarantee ]);
    ]
