(* End-to-end tests of the full MCR pipeline on the paper's Listing 1
   server: launch, serve, quiesce, live-update with type transformation,
   rollback on reinitialization and tracing conflicts, mcr-ctl. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Ty = Mcr_types.Ty
module Symtab = Mcr_types.Symtab
module Aspace = Mcr_vmem.Aspace
module Manager = Mcr_core.Manager
module Ctl = Mcr_core.Ctl
module Listing1 = Mcr_servers.Listing1

let drive ?(max_s = 120) kernel pred =
  let ok = K.run_until kernel ~max_ns:(K.clock_ns kernel + (max_s * 1_000_000_000)) pred in
  Alcotest.(check bool) "simulation made progress" true ok

let boot () =
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  Alcotest.(check bool) "startup completes" true (Manager.wait_startup m ());
  (kernel, m)

(* one client request; returns the server's reply *)
let request kernel =
  let reply = ref None in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"client"
      ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port = Listing1.port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | None -> reply := Some "NOCONN"
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data = "GET /" }));
            match K.syscall (S.Read { fd; max = 256; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD"))
      ()
  in
  drive kernel (fun () -> not (K.alive p));
  match !reply with Some r -> r | None -> Alcotest.fail "client produced no reply"

(* ------------------------------------------------------------------ *)

let test_serves_requests () =
  let kernel, _m = boot () in
  Alcotest.(check string) "first" "hi/v1:1" (request kernel);
  Alcotest.(check string) "second" "hi/v1:2" (request kernel);
  Alcotest.(check string) "third" "hi/v1:3" (request kernel)

let test_quiescence_converges_fast () =
  let kernel, m = boot () in
  ignore (request kernel);
  match Manager.quiesce_only m with
  | Some ns ->
      Alcotest.(check bool) "under 100 ms" true (ns < 100_000_000);
      (* the server must still work after release *)
      Alcotest.(check string) "serves after release" "hi/v1:2" (request kernel)
  | None -> Alcotest.fail "quiescence did not converge"

let test_live_update_preserves_state () =
  let kernel, m = boot () in
  Alcotest.(check string) "pre 1" "hi/v1:1" (request kernel);
  Alcotest.(check string) "pre 2" "hi/v1:2" (request kernel);
  Alcotest.(check string) "pre 3" "hi/v1:3" (request kernel);
  let m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update succeeded" true report.Manager.success;
  Alcotest.(check (option string)) "no failure" None (Option.map Mcr_error.to_string report.Manager.failure);
  (* the request counter survived the update: state was transferred *)
  Alcotest.(check string) "post 4" "hi/v2:4" (request kernel);
  Alcotest.(check string) "post 5" "hi/v2:5" (request kernel);
  (* old version is gone *)
  Alcotest.(check bool) "old process terminated" false (K.alive (Manager.root_proc m));
  Alcotest.(check bool) "new process alive" true (K.alive (Manager.root_proc m2));
  ignore m2

let test_update_transforms_list_nodes () =
  let kernel, m = boot () in
  for _ = 1 to 3 do
    ignore (request kernel)
  done;
  let m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  (* walk the transformed list in the new version's memory: values 3,2,1 and
     the new field zero-initialized (Figure 2) *)
  let image = Manager.root_image m2 in
  let aspace = image.P.i_aspace in
  let env = image.P.i_version.P.tyenv in
  let head = (Symtab.lookup image.P.i_symtab "list").Symtab.addr in
  let field base name = Mcr_types.Access.read_field aspace env ~base (Ty.Named "l_t") name in
  let rec walk addr acc =
    if addr = 0 then List.rev acc
    else walk (field addr "next") ((field addr "value", field addr "new") :: acc)
  in
  let nodes = walk (field head "next") [] in
  Alcotest.(check (list (pair int int)))
    "nodes transformed with new field zeroed"
    [ (3, 0); (2, 0); (1, 0) ]
    nodes;
  (* and the structure keeps working *)
  Alcotest.(check string) "post-update request" "hi/v2:4" (request kernel)

let test_update_timing_reported () =
  let kernel, m = boot () in
  for _ = 1 to 2 do
    ignore (request kernel)
  done;
  let _, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "success" true report.Manager.success;
  Alcotest.(check bool) "quiesce < 100ms" true (report.Manager.quiesce_ns < 100_000_000);
  Alcotest.(check bool) "cm measured" true (report.Manager.control_migration_ns > 0);
  Alcotest.(check bool) "st measured" true (report.Manager.state_transfer_ns > 0);
  Alcotest.(check bool) "update < 1s" true (report.Manager.total_ns < 1_000_000_000);
  Alcotest.(check bool) "replayed calls" true (report.Manager.replayed_calls > 0)

let test_rollback_on_omitted_call () =
  let kernel, m = boot () in
  Alcotest.(check string) "pre" "hi/v1:1" (request kernel);
  let m2, report = Manager.update m (Listing1.v2 ~variant:`Omit_listen ()) in
  Alcotest.(check bool) "update failed" false report.Manager.success;
  Alcotest.(check bool) "replay conflicts reported" true
    (report.Manager.replay_conflicts <> []);
  (* rollback: the old version resumes service, state intact *)
  Alcotest.(check string) "old still serves" "hi/v1:2" (request kernel);
  Alcotest.(check bool) "same manager" true (m == m2)

let test_rollback_on_tracing_conflict () =
  let kernel, m = boot () in
  ignore (request kernel);
  let m2, report = Manager.update m (Listing1.v2 ~variant:`Change_hidden ()) in
  Alcotest.(check bool) "update failed" false report.Manager.success;
  Alcotest.(check bool) "transfer conflicts reported" true
    (report.Manager.transfer_conflicts <> []);
  Alcotest.(check string) "old still serves" "hi/v1:2" (request kernel);
  ignore m2

let test_chained_updates () =
  (* v1 -> v2 -> back to a v1-shaped version: the reconstructed startup log
     of the replayed version must support the next update *)
  let kernel, m = boot () in
  ignore (request kernel);
  let m2, r1 = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "first update ok" true r1.Manager.success;
  Alcotest.(check string) "v2 serves" "hi/v2:2" (request kernel);
  ignore (request kernel);
  (* a third version: v2 shape, different tag and layout *)
  let v3 = { (Listing1.v2 ()) with P.version_tag = "3.0"; P.layout_bias = 1024 } in
  let m3, r2 = Manager.update m2 v3 in
  Alcotest.(check bool) "second update ok" true r2.Manager.success;
  Alcotest.(check string) "v3 serves with preserved count" "hi/v2:4" (request kernel);
  ignore m3

let test_rollback_on_renamed_function () =
  (* the paper's admitted conservativeness (Section 5): renaming a startup
     function changes the call-stack IDs, so replay cannot match the
     recorded calls and conservatively rolls back *)
  let kernel, m = boot () in
  ignore (request kernel);
  let m2, report = Manager.update m (Listing1.v2 ~variant:`Rename_init ()) in
  Alcotest.(check bool) "spurious but safe rollback" false report.Manager.success;
  Alcotest.(check string) "old still serves" "hi/v1:2" (request kernel);
  ignore m2

let test_update_scales_to_many_nodes () =
  (* a moderately large object graph: 150 list nodes transferred and
     type-transformed in one update *)
  let kernel, m = boot () in
  for _ = 1 to 150 do
    ignore (request kernel)
  done;
  let m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  (match report.Manager.transfers with
  | [ (_, o) ] ->
      Alcotest.(check bool) "all nodes reallocated" true
        (o.Mcr_trace.Transfer.fresh_allocations >= 150)
  | _ -> Alcotest.fail "expected one pair");
  Alcotest.(check string) "counter continues" "hi/v2:151" (request kernel);
  ignore m2

let test_chained_updates_preserve_pinned_objects () =
  (* the hidden structure (reachable only through the conservative pointer
     in b) is pinned at its original address by the first update; the
     second update must re-discover the pinned region and carry it forward
     — content intact, address stable, pages mapped in every version *)
  let kernel, m = boot () in
  ignore (request kernel);
  let hidden_addr_in m' =
    let image = Manager.root_image m' in
    Mcr_vmem.Aspace.read_word image.P.i_aspace
      (Symtab.lookup image.P.i_symtab "b").Symtab.addr
  in
  let read_hidden m' addr =
    let image = Manager.root_image m' in
    ( Mcr_vmem.Aspace.read_word image.P.i_aspace addr,
      Mcr_vmem.Aspace.read_word image.P.i_aspace (Mcr_vmem.Addr.add_words addr 1) )
  in
  let m2, r1 = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "hop 1 ok" true r1.Manager.success;
  let addr1 = hidden_addr_in m2 in
  Alcotest.(check (pair int int)) "content after hop 1" (11, 22) (read_hidden m2 addr1);
  ignore (request kernel);
  let v3 = { (Listing1.v2 ()) with P.version_tag = "3.0"; P.layout_bias = 1024 } in
  let m3, r2 = Manager.update m2 v3 in
  Alcotest.(check bool) "hop 2 ok" true r2.Manager.success;
  let addr2 = hidden_addr_in m3 in
  Alcotest.(check int) "pinned address stable across hops" addr1 addr2;
  Alcotest.(check (pair int int)) "content after hop 2" (11, 22) (read_hidden m3 addr2);
  Alcotest.(check string) "still serving" "hi/v2:3" (request kernel)

let test_ctl_roundtrip () =
  let kernel, m = boot () in
  ignore (request kernel);
  let reply = ref None in
  Ctl.request_update kernel ~path:(Manager.ctl_path m) ~on_reply:(fun r -> reply := Some r);
  drive kernel (fun () -> Manager.update_requested m);
  let m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  drive kernel (fun () -> !reply <> None);
  Alcotest.(check (option string)) "ctl client told OK" (Some "OK") !reply;
  Alcotest.(check string) "new version serves" "hi/v2:2" (request kernel);
  ignore m2

let test_ctl_failure_reply () =
  let kernel, m = boot () in
  ignore (request kernel);
  let reply = ref None in
  Ctl.request_update kernel ~path:(Manager.ctl_path m) ~on_reply:(fun r -> reply := Some r);
  drive kernel (fun () -> Manager.update_requested m);
  let _, report = Manager.update m (Listing1.v2 ~variant:`Omit_listen ()) in
  Alcotest.(check bool) "update failed" false report.Manager.success;
  drive kernel (fun () -> !reply <> None);
  (match !reply with
  | Some r -> Alcotest.(check bool) "FAIL reply" true (String.length r >= 4 && String.sub r 0 4 = "FAIL")
  | None -> Alcotest.fail "no ctl reply");
  Alcotest.(check string) "old still serves" "hi/v1:2" (request kernel)

let test_config_change_across_update () =
  (* mutable reinitialization re-reads configuration: with no dirty state,
     the new version's freshly initialized banner stands *)
  let kernel, m = boot () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=bonjour";
  let _, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  Alcotest.(check string) "new banner picked up" "bonjour/v2:1" (request kernel)

let test_dirty_page_false_sharing () =
  (* soft-dirty tracking is page-granular (as in Linux): once requests dirty
     the heap page holding the startup-time banner buffer, the banner is
     transferred along with the genuinely dirty objects and the old value
     survives a concurrent config change — the same behaviour the real
     system exhibits *)
  let kernel, m = boot () in
  ignore (request kernel);
  K.fs_write kernel ~path:Listing1.config_path "welcome=bonjour";
  let _, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  Alcotest.(check string) "old banner transferred with its dirty page, count preserved"
    "hi/v2:2" (request kernel)

let test_trace_statistics_nonempty () =
  let kernel, m = boot () in
  for _ = 1 to 3 do
    ignore (request kernel)
  done;
  let stats = Manager.trace_statistics m in
  Alcotest.(check bool) "precise pointers found" true
    (stats.Mcr_trace.Objgraph.precise.Mcr_trace.Objgraph.ptr > 0);
  Alcotest.(check bool) "likely pointers found (hidden ptr in b)" true
    (stats.Mcr_trace.Objgraph.likely.Mcr_trace.Objgraph.ptr > 0)

let test_memory_stats () =
  let kernel, m = boot () in
  ignore (request kernel);
  let ms = Manager.memory_stats m in
  Alcotest.(check bool) "resident positive" true (ms.Manager.resident_bytes > 0);
  Alcotest.(check bool) "tags positive" true (ms.Manager.tag_metadata_words > 0);
  Alcotest.(check bool) "log recorded" true (ms.Manager.startup_log_entries > 0);
  Alcotest.(check int) "one process" 1 ms.Manager.processes

let test_update_drains_inflight_connection () =
  (* a connection accepted before quiescence is served by the OLD version
     before it parks: quiescence waits for in-flight events to drain *)
  let kernel, m = boot () in
  ignore (request kernel);
  let reply = ref None in
  let _client =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"slow-client"
      ~entry:"main"
      ~main:(fun _ ->
        match K.syscall (S.Connect { port = Listing1.port }) with
        | S.Ok_fd fd -> (
            (* connected and accepted, but the request arrives mid-update *)
            ignore (K.syscall (S.Nanosleep { ns = 200_000_000 }));
            ignore (K.syscall (S.Write { fd; data = "GET /" }));
            match K.syscall (S.Read { fd; max = 256; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD")
        | _ -> reply := Some "NOCONN")
      ()
  in
  (* let the connect land and the old server accept it *)
  K.run_for kernel 10_000_000;
  let _m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  drive kernel (fun () -> !reply <> None);
  Alcotest.(check (option string)) "in-flight connection drained by old version"
    (Some "hi/v1:2") !reply

let test_update_queued_connection_served_by_new () =
  (* a connection that lands in the backlog while both versions are parked
     is served by the NEW version after release *)
  let kernel, m = boot () in
  ignore (request kernel);
  let reply = ref None in
  let _client =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"late-client"
      ~entry:"main"
      ~main:(fun _ ->
        (* sleep past quiescence convergence (~10-20 ms), into the window
           where the old version is parked and the new one not yet released *)
        ignore (K.syscall (S.Nanosleep { ns = 60_000_000 }));
        match K.syscall (S.Connect { port = Listing1.port }) with
        | S.Ok_fd fd -> (
            ignore (K.syscall (S.Write { fd; data = "GET /" }));
            match K.syscall (S.Read { fd; max = 256; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD")
        | _ -> reply := Some "NOCONN")
      ()
  in
  let _m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  drive kernel (fun () -> !reply <> None);
  Alcotest.(check (option string)) "queued connection served by new version"
    (Some "hi/v2:2") !reply

let () =
  Alcotest.run "mcr_integration"
    [
      ( "serving",
        [
          Alcotest.test_case "serves requests" `Quick test_serves_requests;
          Alcotest.test_case "quiescence converges" `Quick test_quiescence_converges_fast;
        ] );
      ( "live-update",
        [
          Alcotest.test_case "state preserved" `Quick test_live_update_preserves_state;
          Alcotest.test_case "list nodes transformed" `Quick test_update_transforms_list_nodes;
          Alcotest.test_case "timing reported" `Quick test_update_timing_reported;
          Alcotest.test_case "config change picked up" `Quick test_config_change_across_update;
          Alcotest.test_case "dirty-page false sharing" `Quick test_dirty_page_false_sharing;
          Alcotest.test_case "in-flight connection drained" `Quick
            test_update_drains_inflight_connection;
          Alcotest.test_case "queued connection to new version" `Quick
            test_update_queued_connection_served_by_new;
          Alcotest.test_case "chained updates" `Quick test_chained_updates;
          Alcotest.test_case "chained pins preserved" `Quick
            test_chained_updates_preserve_pinned_objects;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "omitted call" `Quick test_rollback_on_omitted_call;
          Alcotest.test_case "tracing conflict" `Quick test_rollback_on_tracing_conflict;
          Alcotest.test_case "renamed function" `Quick test_rollback_on_renamed_function;
        ] );
      ( "scale",
        [ Alcotest.test_case "150-node transfer" `Quick test_update_scales_to_many_nodes ] );
      ( "mcr-ctl",
        [
          Alcotest.test_case "roundtrip" `Quick test_ctl_roundtrip;
          Alcotest.test_case "failure reply" `Quick test_ctl_failure_reply;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "trace statistics" `Quick test_trace_statistics_nonempty;
          Alcotest.test_case "memory stats" `Quick test_memory_stats;
        ] );
    ]
