(* The update flight recorder, end to end: Frame codec unit tests, the
   attribution-reconciliation property (components sum to downtime exactly
   across servers x worker counts x pre-copy, committed and rolled-back
   attempts alike, plus seeded-fault qcheck sweeps), JSON round-trips, the
   golden EXPLAIN payload over the v1 wire protocol, SLO budget
   evaluation, retry lineage, and the post-mortem narrative naming the
   conflicting object and failed stage. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Ctl = Mcr_core.Ctl
module Frame = Mcr_core.Frame
module Policy = Mcr_core.Policy
module Fault = Mcr_fault.Fault
module Flight = Mcr_obs.Flight
module Postmortem = Mcr_obs.Postmortem
module Metrics = Mcr_obs.Metrics
module Testbed = Mcr_workloads.Testbed

let drive kernel pred =
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 120_000_000_000) pred)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Frame codec *)

let test_frame_requests () =
  (match Frame.parse_request "HELLO 1 UPDATE" with
  | `Hello (1, Some "UPDATE") -> ()
  | _ -> Alcotest.fail "HELLO 1 UPDATE");
  (match Frame.parse_request "HELLO 3" with
  | `Hello (3, None) -> ()
  | _ -> Alcotest.fail "bare HELLO is a handshake");
  (match Frame.parse_request "HELLO 1 EXPLAIN 2" with
  | `Hello (1, Some "EXPLAIN 2") -> ()
  | _ -> Alcotest.fail "command keeps its arguments");
  (match Frame.parse_request "HELLO x UPDATE" with
  | `Malformed_hello -> ()
  | _ -> Alcotest.fail "non-integer version is malformed");
  (match Frame.parse_request "UPDATE" with
  | `Legacy "UPDATE" -> ()
  | _ -> Alcotest.fail "raw command takes the legacy path");
  Alcotest.(check string) "hello_frame with command" "HELLO 1 STATS"
    (Frame.hello_frame ~version:1 ~command:"STATS");
  Alcotest.(check string) "hello_frame bare" "HELLO 1"
    (Frame.hello_frame ~version:1 ~command:"")

let test_frame_replies () =
  let parse = Frame.parse_reply ~version:1 in
  (match parse "OK" with
  | Ok "" -> ()
  | _ -> Alcotest.fail "bare OK");
  (match parse (Frame.ok_inline "42") with
  | Ok "42" -> ()
  | _ -> Alcotest.fail "OK inline");
  (match parse (Frame.ok_payload "line1\nline2") with
  | Ok "line1\nline2" -> ()
  | _ -> Alcotest.fail "OK payload");
  (match parse "ERR version 7" with
  | Error (Frame.Version_mismatch { client = 1; server = 7 }) -> ()
  | _ -> Alcotest.fail "version mismatch");
  (match parse (Frame.err "no flight records") with
  | Error (Frame.Refused "no flight records") -> ()
  | _ -> Alcotest.fail "refusal");
  (match parse "gibberish" with
  | Error (Frame.Transport _) -> ()
  | _ -> Alcotest.fail "unexpected frame is a transport error");
  Alcotest.(check string) "legacy UPDATE downgrade" "FAIL busy"
    (Frame.legacy_update_frame (Frame.err "busy"));
  Alcotest.(check string) "legacy OK passthrough" "OK"
    (Frame.legacy_update_frame Frame.ok)

(* ------------------------------------------------------------------ *)
(* Attribution reconciliation: the property the recorder exists for *)

let policy ~workers ~precopy =
  Policy.default
  |> Policy.with_transfer_workers workers
  |> Policy.with_precopy precopy

let flight_of ?fault ~workers ~precopy server =
  let kernel = K.create () in
  let m = Testbed.launch kernel server in
  Manager.set_policy m (policy ~workers ~precopy);
  ignore (Testbed.benchmark kernel server ~scale:1000 ());
  let _, report = Manager.update m ?fault (Testbed.final_version server) in
  report

let check_reconciled label (f : Flight.record) =
  if Flight.unattributed_ns f <> 0 then
    Alcotest.failf "%s: %d ns unattributed (downtime %d, sum %d)" label
      (Flight.unattributed_ns f) f.Flight.f_downtime_ns
      (Flight.attribution_sum f.Flight.f_attribution)

let test_attribution_matrix () =
  List.iter
    (fun server ->
      List.iter
        (fun workers ->
          List.iter
            (fun precopy ->
              let label =
                Printf.sprintf "%s W=%d precopy=%b" (Testbed.name server) workers precopy
              in
              let report = flight_of ~workers ~precopy server in
              Alcotest.(check bool) (label ^ " committed") true report.Manager.success;
              let f = report.Manager.flight in
              check_reconciled label f;
              Alcotest.(check bool) (label ^ " success flag") true f.Flight.f_success;
              Alcotest.(check bool) (label ^ " no explanation on success") true
                (f.Flight.f_explanation = None);
              Alcotest.(check int) (label ^ " workers recorded") workers f.Flight.f_workers;
              Alcotest.(check bool) (label ^ " precopy recorded") precopy f.Flight.f_precopy;
              if precopy then
                Alcotest.(check bool) (label ^ " precopy rounds recorded") true
                  (List.length f.Flight.f_rounds > 0))
            [ false; true ])
        [ 1; 4 ])
    [ Testbed.Nginx; Testbed.Httpd; Testbed.Vsftpd; Testbed.Sshd ]

let test_attribution_rollback () =
  List.iter
    (fun server ->
      let label = Testbed.name server ^ " transfer-conflict" in
      let report =
        flight_of ~workers:1 ~precopy:false
          ~fault:(Fault.script [ Fault.Transfer_conflict ])
          server
      in
      Alcotest.(check bool) (label ^ " rolled back") false report.Manager.success;
      check_reconciled label report.Manager.flight)
    [ Testbed.Nginx; Testbed.Httpd; Testbed.Vsftpd; Testbed.Sshd ]

let servers = [| Testbed.Nginx; Testbed.Httpd; Testbed.Vsftpd; Testbed.Sshd |]

let attribution_seeded_prop =
  QCheck.Test.make ~name:"attribution sums to downtime under seeded faults" ~count:40
    QCheck.(
      quad (int_range 0 (Array.length servers - 1)) (int_range 0 1) bool
        (int_range 0 1_000_000))
    (fun (si, wi, precopy, seed) ->
      let server = servers.(si) in
      let workers = [| 1; 4 |].(wi) in
      let report =
        flight_of ~workers ~precopy ~fault:(Fault.of_seed seed) server
      in
      let f = report.Manager.flight in
      if Flight.unattributed_ns f <> 0 then
        QCheck.Test.fail_reportf "%s W=%d precopy=%b seed=%d: %d ns unattributed"
          (Testbed.name server) workers precopy seed (Flight.unattributed_ns f);
      (* rollbacks must carry an explanation, commits must not *)
      if report.Manager.success then f.Flight.f_explanation = None
      else f.Flight.f_explanation <> None)

(* ------------------------------------------------------------------ *)
(* JSON round-trip *)

let test_json_roundtrip () =
  let commit = (flight_of ~workers:4 ~precopy:true Testbed.Nginx).Manager.flight in
  let rollback =
    (flight_of ~workers:1 ~precopy:false
       ~fault:(Fault.script [ Fault.Transfer_conflict ])
       Testbed.Httpd)
      .Manager.flight
  in
  List.iter
    (fun (label, f) ->
      match Flight.of_json (Flight.to_json f) with
      | Ok f' -> Alcotest.(check bool) (label ^ " round-trips") true (f = f')
      | Error e -> Alcotest.failf "%s: of_json failed: %s" label e)
    [ ("commit", commit); ("rollback", rollback) ];
  match Flight.of_json_list (Flight.list_to_json [ commit; rollback ]) with
  | Ok [ a; b ] ->
      Alcotest.(check bool) "list round-trips" true (a = commit && b = rollback)
  | Ok _ -> Alcotest.fail "list length changed"
  | Error e -> Alcotest.failf "of_json_list failed: %s" e

(* ------------------------------------------------------------------ *)
(* EXPLAIN over the wire, pinned against a golden payload *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let explain_scenario () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Httpd in
  ignore (Testbed.benchmark kernel Testbed.Httpd ~scale:1000 ());
  let m2, report =
    Manager.update m
      ~fault:(Fault.script [ Fault.Transfer_conflict ])
      (Testbed.final_version Testbed.Httpd)
  in
  Alcotest.(check bool) "rolled back" false report.Manager.success;
  (kernel, m2)

let request_explain kernel m2 ~nth =
  let result = ref None in
  Ctl.request_explain kernel ~path:(Manager.ctl_path m2) ~nth
    ~on_result:(fun r -> result := Some r)
    ();
  drive kernel (fun () -> !result <> None);
  match !result with
  | None -> Alcotest.fail "EXPLAIN got no reply"
  | Some r -> r

let test_explain_golden () =
  let kernel, m2 = explain_scenario () in
  let json =
    match request_explain kernel m2 ~nth:None with
    | Ok json -> json
    | Error e -> Alcotest.failf "EXPLAIN LAST refused: %a" Ctl.pp_error e
  in
  Alcotest.(check string) "EXPLAIN LAST payload matches golden"
    (String.trim (read_file "golden/flight_explain.golden"))
    (String.trim json);
  (* the payload parses back into the record the manager holds *)
  match Flight.of_json json with
  | Error e -> Alcotest.failf "EXPLAIN payload unparseable: %s" e
  | Ok f -> (
      Alcotest.(check bool) "record marks failure" false f.Flight.f_success;
      check_reconciled "EXPLAIN payload" f;
      match f.Flight.f_explanation with
      | None -> Alcotest.fail "rollback record lacks explanation"
      | Some e ->
          Alcotest.(check string) "failed stage" "state_transfer" e.Flight.e_stage;
          Alcotest.(check (option string)) "fired fault point"
            (Some "transfer_conflict") e.Flight.e_fault;
          (match e.Flight.e_conflicts with
          | [ c ] -> Alcotest.(check string) "conflict kind" "injected" c.Flight.c_kind
          | cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs)))

let test_explain_wire_errors () =
  let kernel, m2 = explain_scenario () in
  (match request_explain kernel m2 ~nth:(Some 99) with
  | Error (Ctl.Refused reason) ->
      Alcotest.(check string) "out-of-range refusal" "no flight record 99" reason
  | Ok _ -> Alcotest.fail "EXPLAIN 99 should refuse"
  | Error e -> Alcotest.failf "unexpected error: %a" Ctl.pp_error e);
  (* EXPLAIN 1 = LAST *)
  let last =
    match request_explain kernel m2 ~nth:None with Ok j -> j | Error _ -> assert false
  in
  match request_explain kernel m2 ~nth:(Some 1) with
  | Ok j -> Alcotest.(check string) "EXPLAIN 1 = EXPLAIN LAST" last j
  | Error e -> Alcotest.failf "EXPLAIN 1 refused: %a" Ctl.pp_error e

let test_explain_empty () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Nginx in
  match request_explain kernel m ~nth:None with
  | Error (Ctl.Refused "no flight records") -> ()
  | Ok _ -> Alcotest.fail "EXPLAIN on a fresh manager should refuse"
  | Error e -> Alcotest.failf "unexpected error: %a" Ctl.pp_error e

(* ------------------------------------------------------------------ *)
(* SLO budgets *)

let test_slo_violation () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Nginx in
  Manager.set_policy m
    (Policy.with_slo ~downtime_ns:(Some 1) ~total_ns:None Policy.default);
  ignore (Testbed.benchmark kernel Testbed.Nginx ~scale:1000 ());
  let _, report = Manager.update m (Testbed.final_version Testbed.Nginx) in
  Alcotest.(check bool) "committed" true report.Manager.success;
  (match report.Manager.flight.Flight.f_slo with
  | None -> Alcotest.fail "SLO budget set but not evaluated"
  | Some s ->
      Alcotest.(check bool) "1 ns downtime budget violated" false s.Flight.s_downtime_ok;
      Alcotest.(check bool) "no total budget -> ok" true s.Flight.s_total_ok;
      Alcotest.(check bool) "slo_violated" true (Flight.slo_violated s));
  let snap = Metrics.snapshot (Manager.metrics m) in
  Alcotest.(check (option int)) "mcr_slo_violations_total" (Some 1)
    (Metrics.find_counter snap "mcr_slo_violations_total")

let test_slo_met () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Nginx in
  Manager.set_policy m
    (Policy.with_slo ~downtime_ns:(Some 60_000_000_000)
       ~total_ns:(Some 60_000_000_000) Policy.default);
  let _, report = Manager.update m (Testbed.final_version Testbed.Nginx) in
  Alcotest.(check bool) "committed" true report.Manager.success;
  (match report.Manager.flight.Flight.f_slo with
  | Some s -> Alcotest.(check bool) "budgets met" false (Flight.slo_violated s)
  | None -> Alcotest.fail "SLO budget set but not evaluated");
  let snap = Metrics.snapshot (Manager.metrics m) in
  Alcotest.(check (option int)) "no violation counted" (Some 0)
    (Metrics.find_counter snap "mcr_slo_violations_total")

(* ------------------------------------------------------------------ *)
(* Retry lineage *)

let test_retry_lineage () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Httpd in
  let m2, report =
    Manager.update m
      ~policy:(Policy.with_retries 2 Policy.default)
      ~fault:(Fault.script [ Fault.Transfer_conflict ])
      (Testbed.final_version Testbed.Httpd)
  in
  Alcotest.(check bool) "retry commits" true report.Manager.success;
  let f = report.Manager.flight in
  Alcotest.(check int) "winning attempt index" 1 f.Flight.f_attempt;
  (match f.Flight.f_prior with
  | [ p ] ->
      Alcotest.(check int) "prior attempt index" 0 p.Flight.f_attempt;
      Alcotest.(check bool) "prior attempt failed" false p.Flight.f_success;
      Alcotest.(check bool) "prior attempt explained" true
        (p.Flight.f_explanation <> None);
      Alcotest.(check bool) "lineage flattened" true (p.Flight.f_prior = []);
      check_reconciled "prior attempt" p
  | ps -> Alcotest.failf "expected 1 prior attempt, got %d" (List.length ps));
  check_reconciled "winning attempt" f;
  (* both attempts are in the ring, newest first, seq monotonic *)
  match Manager.flight_records m2 with
  | newest :: older :: _ ->
      Alcotest.(check bool) "newest is the commit" true newest.Flight.f_success;
      Alcotest.(check bool) "older is the rollback" false older.Flight.f_success;
      Alcotest.(check bool) "seq monotonic" true
        (newest.Flight.f_seq > older.Flight.f_seq)
  | _ -> Alcotest.fail "ring should hold both attempts"

(* ------------------------------------------------------------------ *)
(* Post-mortem narrative *)

let test_postmortem_narrative () =
  let report =
    flight_of ~workers:1 ~precopy:false
      ~fault:(Fault.script [ Fault.Transfer_conflict ])
      Testbed.Httpd
  in
  let text = Postmortem.render report.Manager.flight in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "narrative mentions %S" needle) true
        (contains text needle))
    [
      "ROLLED BACK";
      "state_transfer";
      "mutable tracing conflict";
      "injected";
      "transfer_conflict";
      "components sum to the reported downtime exactly";
    ]

let test_postmortem_waterfall () =
  let report = flight_of ~workers:4 ~precopy:true Testbed.Nginx in
  let text = Postmortem.render report.Manager.flight in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "waterfall mentions %S" needle) true
        (contains text needle))
    [ "COMMITTED"; "downtime waterfall:"; "quiesce"; "pre-copy rounds (prepaid" ]

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "flight"
    [
      ( "frame",
        [
          Alcotest.test_case "request parsing" `Quick test_frame_requests;
          Alcotest.test_case "reply parsing" `Quick test_frame_replies;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "matrix: servers x workers x precopy" `Slow
            test_attribution_matrix;
          Alcotest.test_case "rollback attempts reconcile" `Quick
            test_attribution_rollback;
          qt attribution_seeded_prop;
        ] );
      ( "json",
        [ Alcotest.test_case "to_json/of_json round-trip" `Quick test_json_roundtrip ] );
      ( "explain",
        [
          Alcotest.test_case "golden payload over the wire" `Quick test_explain_golden;
          Alcotest.test_case "wire errors" `Quick test_explain_wire_errors;
          Alcotest.test_case "empty recorder refuses" `Quick test_explain_empty;
        ] );
      ( "slo",
        [
          Alcotest.test_case "violation recorded and counted" `Quick test_slo_violation;
          Alcotest.test_case "met budgets" `Quick test_slo_met;
        ] );
      ("retry", [ Alcotest.test_case "lineage" `Quick test_retry_lineage ]);
      ( "postmortem",
        [
          Alcotest.test_case "conflict narrative" `Quick test_postmortem_narrative;
          Alcotest.test_case "waterfall" `Quick test_postmortem_waterfall;
        ] );
    ]
