(* Unit tests for Mcr_replay: call classification, startup-log recording,
   replay matching and conflicts, pid virtualization, fd garbage
   collection — observed through the Listing 1 server. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Logdefs = Mcr_replay.Logdefs
module Record = Mcr_replay.Record
module Replayer = Mcr_replay.Replayer
module Manager = Mcr_core.Manager
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace

(* ------------------------------------------------------------------ *)
(* Logdefs: classification *)

let test_replay_class () =
  let replayed =
    [
      S.Socket;
      S.Bind { fd = 1000; port = 80 };
      S.Listen { fd = 1000; backlog = 8 };
      S.Unix_listen { path = "/x" };
      S.Open { path = "/etc/x"; create = false };
      S.Dup { fd = 1000 };
      S.Close { fd = 1000 };
      S.Getpid;
      S.Getppid;
      S.Fork { entry = "w" };
    ]
  in
  let live =
    [
      S.Accept { fd = 1000; nonblock = false };
      S.Read { fd = 3; max = 10; nonblock = false };
      S.Write { fd = 3; data = "x" };
      S.Connect { port = 80 };
      S.Nanosleep { ns = 1 };
      S.Sem_post { name = "s" };
      S.Waitpid { pid = 2 };
      S.Thread_create { entry = "t" };
    ]
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (S.call_name c ^ " replayed") true (Logdefs.replay_class c))
    replayed;
  List.iter
    (fun c -> Alcotest.(check bool) (S.call_name c ^ " live") false (Logdefs.replay_class c))
    live

let test_same_kind_and_deep_equal () =
  let a = S.Bind { fd = 1000; port = 80 } in
  let b = S.Bind { fd = 1000; port = 81 } in
  Alcotest.(check bool) "same kind different args" true (Logdefs.same_kind a b);
  Alcotest.(check bool) "deep equal distinguishes args" false (Logdefs.deep_equal a b);
  Alcotest.(check bool) "deep equal on identical" true
    (Logdefs.deep_equal a (S.Bind { fd = 1000; port = 80 }));
  Alcotest.(check bool) "different kinds" false (Logdefs.same_kind a S.Socket)

(* ------------------------------------------------------------------ *)
(* Recording *)

let boot () =
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  (kernel, m)

let request kernel =
  let done_ = ref false in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"c" ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port = Listing1.port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        (match connect 100 with
        | Some fd ->
            ignore (K.syscall (S.Write { fd; data = "GET /" }));
            ignore (K.syscall (S.Read { fd; max = 256; nonblock = false }))
        | None -> ());
        done_ := true)
      ()
  in
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> not (K.alive p)))

(* peek at the recorder through a fresh manual session *)
let record_listing1 () =
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let image = ref None in
  let _proc =
    Mcr_program.Loader.launch kernel (Listing1.v1 ()) ~on_image:(fun i -> image := Some i)
  in
  let image = Option.get !image in
  (* the manager normally installs this first-quiesce processing *)
  image.P.i_first_quiesce_hooks <-
    (fun (im : P.image) ->
      Mcr_alloc.Heap.end_startup im.P.i_heap;
      Aspace.epoch_reset im.P.i_aspace ~name:"startup")
    :: image.P.i_first_quiesce_hooks;
  let session = Record.start kernel image in
  ignore
    (K.run_until kernel
       ~max_ns:(K.clock_ns kernel + 10_000_000_000)
       (fun () -> image.P.i_startup_complete));
  (kernel, session)

let call_names (plog : Logdefs.plog) =
  List.map (fun (e : Logdefs.entry) -> S.call_name e.Logdefs.call) plog.Logdefs.entries

let test_record_captures_startup () =
  let _, session = record_listing1 () in
  match Record.logs session with
  | [ plog ] ->
      Alcotest.(check bool) "root key" true (plog.Logdefs.key = Logdefs.Root);
      Alcotest.(check bool) "closed at first quiescent point" true plog.Logdefs.closed;
      let names = call_names plog in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (expected ^ " recorded") true (List.mem expected names))
        [ "open"; "read"; "close"; "socket"; "bind"; "listen" ];
      (* the quiescent accept itself is not part of the startup log *)
      Alcotest.(check bool) "no accept in startup log" false (List.mem "accept" names)
  | logs -> Alcotest.failf "expected one process log, got %d" (List.length logs)

let test_record_reserved_fd_range () =
  let _, session = record_listing1 () in
  match Record.logs session with
  | [ plog ] ->
      List.iter
        (fun (e : Logdefs.entry) ->
          match e.Logdefs.result with
          | S.Ok_fd fd ->
              Alcotest.(check bool)
                (Printf.sprintf "startup fd %d in reserved range" fd)
                true (fd >= 1000)
          | _ -> ())
        plog.Logdefs.entries
  | _ -> Alcotest.fail "expected one log"

let test_record_callstacks_stable () =
  (* two independent recordings of the same program produce the same
     call-stack IDs (version-agnostic identity) *)
  let _, s1 = record_listing1 () in
  let _, s2 = record_listing1 () in
  let ids s =
    List.concat_map
      (fun (l : Logdefs.plog) ->
        List.map
          (fun (e : Logdefs.entry) -> (S.call_name e.Logdefs.call, e.Logdefs.callstack))
          l.Logdefs.entries)
      (Record.logs s)
  in
  Alcotest.(check bool) "identical (call, callstack-id) sequences" true (ids s1 = ids s2)

let test_record_stops_after_startup () =
  let kernel, m = boot () in
  let count_before =
    match m |> Manager.root_image |> fun _ -> Manager.memory_stats m with
    | s -> s.Manager.startup_log_entries
  in
  (* post-startup activity must not grow the startup log *)
  request kernel;
  request kernel;
  let count_after = (Manager.memory_stats m).Manager.startup_log_entries in
  Alcotest.(check int) "log frozen after startup" count_before count_after

(* ------------------------------------------------------------------ *)
(* Replay through live updates *)

let test_replay_arg_mismatch_conflict () =
  let kernel, m = boot () in
  request kernel;
  (* v2 binds a different port: a replay-class call with changed args *)
  let _m2, report = Manager.update m (Listing1.v2 ~variant:`Change_port ()) in
  Alcotest.(check bool) "update fails" false report.Manager.success;
  let has_mismatch =
    List.exists
      (function
        | Replayer.Arg_mismatch _ -> true
        | Replayer.Omitted _ | Replayer.Unsupported _ | Replayer.Injected _ -> false)
      report.Manager.replay_conflicts
  in
  Alcotest.(check bool) "argument-mismatch conflict" true has_mismatch

let test_replay_counts () =
  let kernel, m = boot () in
  request kernel;
  let _m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "ok" true report.Manager.success;
  (* socket, bind, listen, open, close, getpid(s), unix_listen at least *)
  Alcotest.(check bool) "several calls replayed" true (report.Manager.replayed_calls >= 5);
  Alcotest.(check bool) "several calls live" true (report.Manager.live_calls >= 2)

let test_new_logs_support_next_update () =
  (* the reconstructed startup log has the same replayable surface as an
     original recording: kinds and multiplicities of replay-class calls *)
  let kernel, m = boot () in
  request kernel;
  let m2, r1 = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "first ok" true r1.Manager.success;
  request kernel;
  let m3, r2 =
    Manager.update m2 { (Listing1.v2 ()) with P.version_tag = "3.0"; P.layout_bias = 1024 }
  in
  Alcotest.(check bool) "second ok (reconstructed log replayable)" true r2.Manager.success;
  Alcotest.(check bool) "replayed again" true (r2.Manager.replayed_calls >= 5);
  ignore m3

let test_fd_gc_on_multiprocess () =
  (* nginx: the worker must keep only the descriptors its (inherited)
     replay surface needs *)
  let kernel = K.create () in
  let m = Mcr_workloads.Testbed.launch kernel Mcr_workloads.Testbed.Nginx in
  ignore (Mcr_workloads.Testbed.benchmark kernel Mcr_workloads.Testbed.Nginx ~scale:10_000 ());
  let m2, report = Manager.update m (Mcr_servers.Nginx_sim.final ()) in
  Alcotest.(check bool) "nginx update ok" true report.Manager.success;
  let images = Manager.images m2 in
  Alcotest.(check int) "two processes" 2 (List.length images);
  let worker =
    List.find (fun (im : P.image) -> K.parent_pid im.P.i_proc <> 0) images
  in
  let master =
    List.find (fun (im : P.image) -> K.parent_pid im.P.i_proc = 0) images
  in
  let wfds = K.fds worker.P.i_proc and mfds = K.fds master.P.i_proc in
  (* both kept the listening socket; the worker did not leak e.g. a config
     fd that the old worker never had *)
  Alcotest.(check bool) "worker has fds" true (List.length wfds >= 1);
  List.iter
    (fun fd ->
      Alcotest.(check bool)
        (Printf.sprintf "worker fd %d also existed in master image" fd)
        true
        (List.mem fd mfds || fd < 1000))
    wfds

let test_reconstructed_log_equivalent_for_same_version () =
  (* the reconstructed startup log of a replayed version must carry the
     same replayable surface as an original recording: a second
     same-version hop replays it without a single conflict *)
  let kernel, m = boot () in
  request kernel;
  let m2, r1 = Manager.update m { (Listing1.v1 ()) with P.layout_bias = 512 } in
  Alcotest.(check bool) "first hop ok" true r1.Manager.success;
  request kernel;
  let _m3, r2 = Manager.update m2 { (Listing1.v1 ()) with P.layout_bias = 1024 } in
  Alcotest.(check bool) "reconstructed surface replays cleanly" true r2.Manager.success;
  Alcotest.(check int) "no conflicts at all" 0 (List.length r2.Manager.replay_conflicts);
  Alcotest.(check int) "same replay volume on both hops" r1.Manager.replayed_calls
    r2.Manager.replayed_calls

let test_unsupported_shm_conflict () =
  (* Section 7: a startup-time SysV shm id (global, no namespaces) is an
     immutable object MCR cannot virtualize — the update must roll back *)
  let kernel = K.create () in
  (* a tiny program whose startup allocates a SysV shm segment *)
  let tyenv = Mcr_types.Ty.env_create () in
  let mk tag =
    Mcr_program.Progdef.make_version ~prog:"shmd" ~version_tag:tag
      ~layout_bias:(if tag = "1" then 0 else 512)
      ~tyenv ~globals:[ ("shm_id", Mcr_types.Ty.Int) ] ~funcs:[ "main" ] ~strings:[]
      ~entries:
        [
          ( "main",
            fun t ->
              Mcr_program.Api.fn t "main" @@ fun () ->
              (match Mcr_program.Api.sys t (S.Shmget { key = 42 }) with
              | S.Ok_len id -> Mcr_program.Api.store t (Mcr_program.Api.global t "shm_id") id
              | _ -> ());
              Mcr_program.Api.loop t "main_loop" (fun () ->
                  ignore
                    (Mcr_program.Api.blocking t ~qpoint:"wait"
                       (S.Sem_wait { name = "shmd.never"; timeout_ns = None }));
                  true) );
        ]
      ~qpoints:[ ("wait", "sem_wait") ] ()
  in
  let m = Manager.launch kernel (mk "1") in
  assert (Manager.wait_startup m ());
  let m2, report = Manager.update m (mk "2") in
  Alcotest.(check bool) "rolled back" false report.Manager.success;
  Alcotest.(check bool) "unsupported-object conflict" true
    (List.exists
       (function Replayer.Unsupported _ -> true | _ -> false)
       report.Manager.replay_conflicts);
  Alcotest.(check bool) "old version resumed" true (K.alive (Manager.root_proc m2))

let test_pid_virtualization () =
  (* after an update, getpid-derived state still matches: the pidfile
     content written by the old httpd equals what the new version's
     replayed getpid reports *)
  let kernel = K.create () in
  let m = Mcr_workloads.Testbed.launch kernel Mcr_workloads.Testbed.Httpd in
  let old_pid = K.pid (Manager.root_proc m) in
  let m2, report = Manager.update m (Mcr_servers.Httpd_sim.final ()) in
  Alcotest.(check bool) "httpd update ok" true report.Manager.success;
  let new_real_pid = K.pid (Manager.root_proc m2) in
  Alcotest.(check bool) "real pids differ" true (old_pid <> new_real_pid);
  (* the pidfile still holds the old (virtual) pid, and the new version
     accepted it as its own during the pidfile check *)
  Alcotest.(check (option string)) "pidfile holds the virtual pid"
    (Some (string_of_int old_pid))
    (K.fs_read kernel ~path:"/var/run/httpd.pid")

let () =
  Alcotest.run "mcr_replay"
    [
      ( "classification",
        [
          Alcotest.test_case "replay class" `Quick test_replay_class;
          Alcotest.test_case "matching helpers" `Quick test_same_kind_and_deep_equal;
        ] );
      ( "recording",
        [
          Alcotest.test_case "captures startup" `Quick test_record_captures_startup;
          Alcotest.test_case "reserved fd range" `Quick test_record_reserved_fd_range;
          Alcotest.test_case "stable callstack ids" `Quick test_record_callstacks_stable;
          Alcotest.test_case "stops after startup" `Quick test_record_stops_after_startup;
        ] );
      ( "replay",
        [
          Alcotest.test_case "arg mismatch conflict" `Quick test_replay_arg_mismatch_conflict;
          Alcotest.test_case "replay/live counts" `Quick test_replay_counts;
          Alcotest.test_case "reconstructed logs chain" `Quick test_new_logs_support_next_update;
          Alcotest.test_case "fd gc multiprocess" `Quick test_fd_gc_on_multiprocess;
          Alcotest.test_case "pid virtualization" `Quick test_pid_virtualization;
          Alcotest.test_case "unsupported shm object" `Quick test_unsupported_shm_conflict;
          Alcotest.test_case "reconstructed log equivalence" `Quick
            test_reconstructed_log_equivalent_for_same_version;
        ] );
    ]
