(* Unit tests for Mcr_core.Manager surfaces not covered by the integration
   scenarios: accessors, request lifecycle, read-only introspection, and
   the measurement hooks. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Manager = Mcr_core.Manager
module Ctl = Mcr_core.Ctl
module Listing1 = Mcr_servers.Listing1
module Testbed = Mcr_workloads.Testbed
module Aspace = Mcr_vmem.Aspace

let boot () =
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  (kernel, m)

let request kernel =
  let reply = ref None in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"c" ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port = Listing1.port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data = "GET /" }));
            match K.syscall (S.Read { fd; max = 256; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> ())
        | None -> ())
      ()
  in
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> not (K.alive p)));
  Option.value !reply ~default:"NONE"

let test_accessors () =
  let kernel, m = boot () in
  Alcotest.(check string) "version tag" "1.0" (Manager.version m).P.version_tag;
  Alcotest.(check string) "ctl path from program name" "/run/mcr/listing1.sock"
    (Manager.ctl_path m);
  Alcotest.(check bool) "root alive" true (K.alive (Manager.root_proc m));
  Alcotest.(check int) "one image" 1 (List.length (Manager.images m));
  Alcotest.(check bool) "kernel accessor" true (Manager.kernel m == kernel);
  Alcotest.(check bool) "no pending request initially" false (Manager.update_requested m)

let test_update_requested_lifecycle () =
  let kernel, m = boot () in
  Ctl.request_update kernel ~path:(Manager.ctl_path m) ~on_reply:(fun _ -> ());
  ignore
    (K.run_until kernel
       ~max_ns:(K.clock_ns kernel + 10_000_000_000)
       (fun () -> Manager.update_requested m));
  Alcotest.(check bool) "request observed" true (Manager.update_requested m);
  let _m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true report.Manager.success;
  Alcotest.(check bool) "request cleared by the reply" false (Manager.update_requested m)

let test_trace_statistics_read_only () =
  (* taking Table 2 statistics must not disturb service or state *)
  let kernel, m = boot () in
  Alcotest.(check string) "r1" "hi/v1:1" (request kernel);
  let s1 = Manager.trace_statistics m in
  let s2 = Manager.trace_statistics m in
  Alcotest.(check int) "repeatable" s1.Mcr_trace.Objgraph.precise.Mcr_trace.Objgraph.ptr
    s2.Mcr_trace.Objgraph.precise.Mcr_trace.Objgraph.ptr;
  Alcotest.(check string) "service unaffected" "hi/v1:2" (request kernel);
  (* and the program can still be updated afterwards *)
  let _m2, report = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update still ok" true report.Manager.success

let test_memory_stats_shape () =
  let kernel, m = boot () in
  ignore (request kernel);
  let ms = Manager.memory_stats m in
  Alcotest.(check bool) "app bytes positive" true (ms.Manager.app_bytes > 0);
  Alcotest.(check bool) "mcr bytes positive (instrumented)" true (ms.Manager.mcr_bytes > 0);
  Alcotest.(check int) "resident = app + mcr" ms.Manager.resident_bytes
    (ms.Manager.app_bytes + ms.Manager.mcr_bytes);
  Alcotest.(check int) "one process" 1 ms.Manager.processes;
  (* the baseline build models no MCR footprint *)
  let kernel2 = K.create () in
  K.fs_write kernel2 ~path:Listing1.config_path "welcome=hi";
  let mb = Manager.launch kernel2 ~instr:Mcr_program.Instr.baseline (Listing1.v1 ()) in
  ignore (K.run_until kernel2 ~max_ns:(K.clock_ns kernel2 + 100_000_000) (fun () -> false));
  Alcotest.(check int) "baseline mcr bytes" 0 (Manager.memory_stats mb).Manager.mcr_bytes

let test_quiesce_only_repeatable () =
  let kernel, m = boot () in
  ignore (request kernel);
  for i = 1 to 3 do
    match Manager.quiesce_only m with
    | Some ns ->
        Alcotest.(check bool) (Printf.sprintf "round %d bounded" i) true (ns < 100_000_000)
    | None -> Alcotest.failf "round %d did not converge" i
  done;
  Alcotest.(check string) "still serving" "hi/v1:2" (request kernel)

let test_images_track_children () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Httpd in
  Alcotest.(check int) "master + servers"
    (1 + Mcr_servers.Httpd_sim.servers)
    (List.length (Manager.images m));
  (* killed children drop out of the image list *)
  let child =
    List.find (fun (im : P.image) -> K.parent_pid im.P.i_proc <> 0) (Manager.images m)
  in
  K.kill_process kernel child.P.i_proc ~status:1;
  Alcotest.(check int) "dead child excluded"
    (Mcr_servers.Httpd_sim.servers)
    (List.length (Manager.images m))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_stats_command () =
  let kernel, m = boot () in
  ignore (request kernel);
  (* before any update: counters registered, zero updates *)
  let reply = ref None in
  Ctl.request_stats kernel ~path:(Manager.ctl_path m) ~on_reply:(fun x -> reply := Some x);
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 10_000_000_000) (fun () -> !reply <> None));
  let text = Option.value !reply ~default:"" in
  Alcotest.(check bool) "reply mentions update counter" true
    (contains text "mcr_updates_total");
  Alcotest.(check bool) "reply mentions process gauge" true
    (contains text "mcr_processes");
  (* after an update the snapshot reflects the committed update, and the new
     manager's controller serves STATS on the same socket *)
  let m2, r = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true r.Manager.success;
  let snap = r.Manager.metrics in
  Alcotest.(check (option int)) "updates counted"
    (Some 1)
    (List.assoc_opt "mcr_updates_total" snap.Mcr_obs.Metrics.counters);
  Alcotest.(check (option int)) "commit counted"
    (Some 1)
    (List.assoc_opt "mcr_update_commits_total" snap.Mcr_obs.Metrics.counters);
  let reply2 = ref None in
  Ctl.request_stats kernel ~path:(Manager.ctl_path m2) ~on_reply:(fun x -> reply2 := Some x);
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 10_000_000_000) (fun () -> !reply2 <> None));
  Alcotest.(check bool) "post-update STATS served" true
    (contains (Option.value !reply2 ~default:"") "mcr_update_commits_total")

let test_report_totals_consistent () =
  let kernel, m = boot () in
  ignore (request kernel);
  let _m2, r = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "ok" true r.Manager.success;
  Alcotest.(check bool) "phases sum within total" true
    (r.Manager.quiesce_ns + r.Manager.control_migration_ns + r.Manager.state_transfer_ns
    <= r.Manager.total_ns);
  Alcotest.(check bool) "phases nonnegative" true
    (r.Manager.quiesce_ns >= 0
    && r.Manager.control_migration_ns >= 0
    && r.Manager.state_transfer_ns >= 0)

(* --- Soft-dirty incremental transfer: back-to-back updates ------------- *)

module Transfer = Mcr_trace.Transfer
module Policy = Mcr_core.Policy
module Flight = Mcr_obs.Flight

let sum_outcome f (r : Manager.report) =
  List.fold_left (fun acc (_, o) -> acc + f o) 0 r.Manager.transfers

(* Words that actually moved: transferred minus the portion later remapped
   into shared frames. This is the number that must track real mutations. *)
let copied_words r =
  sum_outcome (fun (o : Transfer.outcome) -> o.Transfer.transferred_words - o.Transfer.remapped_words) r

let back_to_back ~traffic_between () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Vsftpd in
  Manager.set_policy m (Policy.with_transfer_remap true (Manager.policy m));
  ignore (Testbed.benchmark kernel Testbed.Vsftpd ~scale:20 ());
  let m2, r1 = Manager.update m (Testbed.final_version Testbed.Vsftpd) in
  Alcotest.(check bool) "first update commits" true r1.Manager.success;
  if traffic_between then ignore (Testbed.benchmark kernel Testbed.Vsftpd ~scale:20 ());
  let m3, r2 = Manager.update m2 (Testbed.final_version Testbed.Vsftpd) in
  Alcotest.(check bool) "second update commits" true r2.Manager.success;
  (m3, r1, r2)

let test_back_to_back_reflects_mutations () =
  (* satellite regression: an update's own stores must not pollute the new
     image's dirty tracking, so an immediate second update pays only for
     genuinely mutated pages — the rest remap as shared frames. *)
  let m3, r1, r2_quiet = back_to_back ~traffic_between:false () in
  let transferred2 = sum_outcome (fun o -> o.Transfer.transferred_words) r2_quiet in
  let remapped2 = sum_outcome (fun o -> o.Transfer.remapped_words) r2_quiet in
  Alcotest.(check bool) "second update remaps pages" true (remapped2 > 0);
  Alcotest.(check bool)
    (Printf.sprintf "copied words are the mutation residue (%d copied of %d transferred)"
       (transferred2 - remapped2) transferred2)
    true
    ((transferred2 - remapped2) * 2 < transferred2);
  Alcotest.(check bool)
    (Printf.sprintf "self-update copies no more than cross-version (%d vs %d)"
       (copied_words r2_quiet) (copied_words r1))
    true
    (copied_words r2_quiet <= copied_words r1);
  (* no shared frame outlives the update window *)
  List.iter
    (fun (im : P.image) ->
      Alcotest.(check int) "no shared frames after commit" 0
        (Aspace.shared_frame_count im.P.i_aspace))
    (Manager.images m3);
  (* the flight record and metrics carry the same counters *)
  Alcotest.(check int) "flight remapped_words" remapped2 r2_quiet.Manager.flight.Flight.f_remapped_words;
  Alcotest.(check bool) "remap metric counted" true
    (match
       List.assoc_opt "mcr_transfer_remapped_words_total"
         r2_quiet.Manager.metrics.Mcr_obs.Metrics.counters
     with
    | Some n -> n >= remapped2
    | None -> false);
  (* with real traffic between the updates, the copied residue grows *)
  let _, _, r2_busy = back_to_back ~traffic_between:true () in
  Alcotest.(check bool)
    (Printf.sprintf "intervening traffic raises copied words (%d quiet vs %d busy)"
       (copied_words r2_quiet) (copied_words r2_busy))
    true
    (copied_words r2_quiet <= copied_words r2_busy)

let test_remap_ctl_command () =
  let kernel, m = boot () in
  Alcotest.(check bool) "remap off by default" false (Manager.policy m).Policy.transfer_remap;
  let reply = ref None in
  Ctl.request_remap kernel ~path:(Manager.ctl_path m) ~enabled:true ~on_reply:(fun x ->
      reply := Some x);
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 10_000_000_000) (fun () -> !reply <> None));
  Alcotest.(check (option string)) "REMAP ON acknowledged" (Some "OK") !reply;
  Alcotest.(check bool) "policy flipped" true (Manager.policy m).Policy.transfer_remap;
  let reply2 = ref None in
  Ctl.request_remap kernel ~path:(Manager.ctl_path m) ~enabled:false ~on_reply:(fun x ->
      reply2 := Some x);
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 10_000_000_000) (fun () -> !reply2 <> None));
  Alcotest.(check (option string)) "REMAP OFF acknowledged" (Some "OK") !reply2;
  Alcotest.(check bool) "policy restored" false (Manager.policy m).Policy.transfer_remap;
  (* and the lineage still updates cleanly afterwards *)
  let _m2, r = Manager.update m (Listing1.v2 ()) in
  Alcotest.(check bool) "update ok" true r.Manager.success

let () =
  Alcotest.run "mcr_core"
    [
      ( "manager",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "update_requested lifecycle" `Quick test_update_requested_lifecycle;
          Alcotest.test_case "trace stats read-only" `Quick test_trace_statistics_read_only;
          Alcotest.test_case "memory stats shape" `Quick test_memory_stats_shape;
          Alcotest.test_case "quiesce_only repeatable" `Quick test_quiesce_only_repeatable;
          Alcotest.test_case "images track children" `Quick test_images_track_children;
          Alcotest.test_case "STATS ctl command" `Quick test_stats_command;
          Alcotest.test_case "report totals" `Quick test_report_totals_consistent;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "back-to-back updates copy only mutations" `Quick
            test_back_to_back_reflects_mutations;
          Alcotest.test_case "REMAP ctl command" `Quick test_remap_ctl_command;
        ] );
    ]
