(* Unit tests for Mcr_program: the instrumented API (shadow stacks,
   blocking wrappers, allocation metadata, stack variables, custom
   allocators), instrumentation configurations, version construction and
   the loader's image lifecycle. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Api = Mcr_program.Api
module Instr = Mcr_program.Instr
module Loader = Mcr_program.Loader
module Ty = Mcr_types.Ty
module Tyreg = Mcr_types.Tyreg
module Sites = Mcr_alloc.Sites
module Heap = Mcr_alloc.Heap
module Pool = Mcr_alloc.Pool

(* a minimal one-entry program for exercising the API *)
let tiny_version ?(qpoints = []) ?(annotations = []) body =
  let tyenv = Ty.env_create () in
  Ty.env_add tyenv "pair_t"
    (Ty.Struct { sname = "pair_t"; fields = [ ("x", Ty.Int); ("y", Ty.Int) ] });
  P.make_version ~prog:"tiny" ~version_tag:"1" ~layout_bias:0 ~tyenv
    ~globals:[ ("g", Ty.Int); ("p", Ty.Ptr (Ty.Named "pair_t")) ]
    ~funcs:[ "main"; "helper" ] ~strings:[ "greeting" ]
    ~entries:[ ("main", body) ]
    ~qpoints ~annotations ()

let run_tiny ?(instr = Instr.full) ?qpoints body =
  let kernel = K.create () in
  let image = ref None in
  let proc =
    Loader.launch kernel ~instr (tiny_version ?qpoints body) ~on_image:(fun i ->
        image := Some i)
  in
  K.run kernel;
  (kernel, proc, Option.get !image)

(* ------------------------------------------------------------------ *)
(* Instr *)

let test_instr_layering () =
  Alcotest.(check bool) "baseline has nothing" false Instr.baseline.Instr.unblockify;
  Alcotest.(check bool) "unblock" true Instr.unblock.Instr.unblockify;
  Alcotest.(check bool) "unblock lacks static" false Instr.unblock.Instr.static_instr;
  Alcotest.(check bool) "sinstr adds static" true Instr.sinstr.Instr.static_instr;
  Alcotest.(check bool) "dinstr adds dynamic" true Instr.dinstr.Instr.dynamic_instr;
  Alcotest.(check bool) "qdet adds detection" true Instr.qdet.Instr.quiesce_detect;
  Alcotest.(check string) "row naming" "+SInstr" (Instr.name Instr.sinstr);
  Alcotest.(check int) "four measured rows" 4 (List.length Instr.table3_rows)

(* ------------------------------------------------------------------ *)
(* Api: shadow stacks *)

let test_fn_stack_balance () =
  let stacks = ref [] in
  let _ =
    run_tiny (fun t ->
        stacks := K.callstack t.P.thread :: !stacks;
        Api.fn t "helper" (fun () -> stacks := K.callstack t.P.thread :: !stacks);
        stacks := K.callstack t.P.thread :: !stacks)
  in
  match List.rev !stacks with
  | [ outer; inner; back ] ->
      (* run_entry pushes the entry name "main" *)
      Alcotest.(check (list string)) "outer" [ "main" ] outer;
      Alcotest.(check (list string)) "inner" [ "helper"; "main" ] inner;
      Alcotest.(check (list string)) "balanced" [ "main" ] back
  | _ -> Alcotest.fail "expected three snapshots"

let test_fn_pops_on_exception () =
  let after = ref [] in
  let _ =
    run_tiny (fun t ->
        (try Api.fn t "helper" (fun () -> failwith "boom") with Failure _ -> ());
        after := K.callstack t.P.thread)
  in
  Alcotest.(check (list string)) "frame popped on exception" [ "main" ] !after

let test_masquerade_restores () =
  let during = ref [] and after = ref [] in
  let _ =
    run_tiny (fun t ->
        Api.fn t "helper" (fun () ->
            Api.masquerade t ~frames:[ "fake_site"; "fake_main" ] (fun () ->
                during := K.callstack t.P.thread);
            after := K.callstack t.P.thread))
  in
  Alcotest.(check (list string)) "masqueraded" [ "fake_site"; "fake_main" ] !during;
  Alcotest.(check (list string)) "restored" [ "helper"; "main" ] !after

(* ------------------------------------------------------------------ *)
(* Api: allocation metadata *)

let test_malloc_records_metadata () =
  let addr = ref 0 in
  let _, _, image =
    run_tiny (fun t -> addr := Api.malloc t ~site:"main:pair" "pair_t")
  in
  match Heap.block_of_payload image.P.i_heap !addr with
  | Some b ->
      Alcotest.(check int) "two words" 2 b.Heap.words;
      Alcotest.(check string) "type name via registry" "pair_t"
        (Tyreg.name_of_id image.P.i_tyreg b.Heap.ty_id);
      Alcotest.(check string) "site label" "main:pair"
        (Sites.find image.P.i_sites b.Heap.site).Sites.label;
      Alcotest.(check int) "callstack id" (Mcr_util.Fnv.strings [ "main" ]) b.Heap.callstack
  | None -> Alcotest.fail "allocation not found"

let test_malloc_uninstrumented_under_baseline () =
  let addr = ref 0 in
  let _, _, image =
    run_tiny ~instr:Instr.baseline (fun t -> addr := Api.malloc t "pair_t")
  in
  match Heap.block_of_payload image.P.i_heap !addr with
  | Some b -> Alcotest.(check bool) "no tags without static instr" false b.Heap.instrumented
  | None -> Alcotest.fail "allocation not found"

let test_malloc_n_array_type () =
  let addr = ref 0 in
  let _, _, image = run_tiny (fun t -> addr := Api.malloc_n t "pair_t" 5) in
  match Heap.block_of_payload image.P.i_heap !addr with
  | Some b ->
      Alcotest.(check int) "5 x 2 words" 10 b.Heap.words;
      Alcotest.(check string) "array type registered" "pair_t[5]"
        (Tyreg.name_of_id image.P.i_tyreg b.Heap.ty_id)
  | None -> Alcotest.fail "allocation not found"

let test_globals_strings_funcs () =
  let seen = ref (0, 0, 0) in
  let _, _, image =
    run_tiny (fun t ->
        seen := (Api.global t "g", Api.string_lit t "greeting", Api.func_ptr t "helper"))
  in
  let g, s, f = !seen in
  Alcotest.(check bool) "global resolved" true (g > 0);
  Alcotest.(check string) "string literal readable" "greeting"
    (Mcr_types.Access.read_string image.P.i_aspace s);
  Alcotest.(check (option string)) "func addr reverse" (Some "helper")
    (Mcr_types.Symtab.func_name_of_addr image.P.i_symtab f)

let test_stack_var_key_and_root () =
  let _, _, image =
    run_tiny (fun t ->
        let v = Api.stack_var t "reqbuf" "pair_t" in
        Api.store t v 9)
  in
  match image.P.i_stack_roots with
  | [ (key, ty, addr) ] ->
      Alcotest.(check string) "stable key" "main#1:reqbuf" key;
      Alcotest.(check bool) "typed" true (Ty.equal image.P.i_version.P.tyenv image.P.i_version.P.tyenv ty (Ty.Named "pair_t"));
      Alcotest.(check int) "written" 9 (Mcr_vmem.Aspace.read_word image.P.i_aspace addr)
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_subpool_nested_lifecycle () =
  let ok = ref false in
  let _, _, _ =
    run_tiny (fun t ->
        let root = Api.pool t "root" in
        let child = Api.subpool t ~parent:root "req" in
        let a = Api.palloc_bytes t child "hello" in
        ok := Api.read_string t a = "hello";
        Api.pool_destroy t child;
        (* root still usable *)
        ignore (Api.palloc_words t root 4))
  in
  Alcotest.(check bool) "nested pool roundtrip" true !ok

(* ------------------------------------------------------------------ *)
(* Api: blocking wrappers *)

let test_blocking_passthrough_when_unlisted () =
  (* a blocking call at a site NOT in qpoints behaves natively: no barrier
     registration, no startup-complete marking *)
  let _, _, image =
    run_tiny ~qpoints:[] (fun t ->
        ignore (Api.blocking t ~qpoint:"w" (S.Sem_wait { name = "x"; timeout_ns = Some 100 })))
  in
  Alcotest.(check bool) "no startup-complete without instrumented qpoint" false
    image.P.i_startup_complete;
  Alcotest.(check int) "nothing registered" 0
    (Mcr_quiesce.Barrier.registered image.P.i_barrier)

let test_blocking_instruments_listed_qpoint () =
  let registered_during = ref (-1) in
  let _, _, image =
    run_tiny
      ~qpoints:[ ("w", "sem_wait") ]
      (fun t ->
        ignore (Api.blocking t ~qpoint:"w" (S.Sem_wait { name = "x"; timeout_ns = Some 100 }));
        registered_during := Mcr_quiesce.Barrier.registered t.P.image.P.i_barrier)
  in
  Alcotest.(check bool) "startup complete at first wrapped call" true
    image.P.i_startup_complete;
  Alcotest.(check int) "thread registered while alive" 1 !registered_during;
  (* the loader deregisters exiting threads *)
  Alcotest.(check int) "deregistered on thread exit" 0
    (Mcr_quiesce.Barrier.registered image.P.i_barrier)

let test_wrapped_sem_wait_honors_total_timeout () =
  (* the slicing wrapper must still respect the caller's overall timeout *)
  let result = ref S.Ok_unit in
  let kernel = K.create () in
  let _ =
    Loader.launch kernel
      (tiny_version ~qpoints:[ ("w", "sem_wait") ] (fun t ->
           result :=
             Api.blocking t ~qpoint:"w" (S.Sem_wait { name = "never"; timeout_ns = Some 25_000_000 })))
      ~on_image:(fun _ -> ())
  in
  K.run kernel;
  Alcotest.(check bool) "ETIMEDOUT surfaces" true (!result = S.Err S.ETIMEDOUT);
  Alcotest.(check bool) "waited about the requested time" true
    (K.clock_ns kernel >= 25_000_000 && K.clock_ns kernel < 80_000_000)

(* ------------------------------------------------------------------ *)
(* Progdef / Loader *)

let test_make_version_requires_main () =
  let tyenv = Ty.env_create () in
  Alcotest.check_raises "no main rejected"
    (Invalid_argument "Progdef.make_version: entries must include main") (fun () ->
      ignore
        (P.make_version ~prog:"x" ~version_tag:"1" ~layout_bias:0 ~tyenv ~globals:[] ~funcs:[]
           ~strings:[] ~entries:[] ()))

let test_diff_versions_counts () =
  let v b =
    let tyenv = Ty.env_create () in
    Ty.env_add tyenv "t1" (if b then Ty.Int else Ty.Word);
    P.make_version ~prog:"x" ~version_tag:"1" ~layout_bias:0 ~tyenv
      ~globals:([ ("a", Ty.Int) ] @ if b then [ ("b", Ty.Int) ] else [])
      ~funcs:([ "main" ] @ if b then [ "f2" ] else [ "f3" ])
      ~strings:[]
      ~entries:[ ("main", fun _ -> ()) ]
      ()
  in
  let d = P.diff_versions (v false) (v true) in
  Alcotest.(check int) "funcs: f3 removed + f2 added" 2 d.P.funcs_changed;
  Alcotest.(check int) "vars: b added" 1 d.P.vars_changed;
  Alcotest.(check int) "types: t1 changed" 1 d.P.types_changed

let test_fork_image_isolates_runtime_state () =
  let kernel = K.create () in
  let version =
    let tyenv = Ty.env_create () in
    P.make_version ~prog:"forker" ~version_tag:"1" ~layout_bias:0 ~tyenv
      ~globals:[ ("g", Ty.Int) ] ~funcs:[ "main" ] ~strings:[]
      ~entries:
        [
          ( "main",
            fun t ->
              ignore (Api.malloc_opaque t 4);
              ignore (Api.sys t (S.Fork { entry = "child" }));
              ignore (Api.sys t (S.Nanosleep { ns = 1_000_000 })) );
          ( "child",
            fun t ->
              (* the child's own allocation must not disturb the parent *)
              ignore (Api.malloc_opaque t 8) );
        ]
      ()
  in
  let image = ref None in
  let proc = Loader.launch kernel version ~on_image:(fun i -> image := Some i) in
  K.run kernel;
  let parent = Option.get !image in
  let child_proc =
    List.find (fun p -> K.parent_pid p = K.pid proc) (K.procs kernel)
  in
  let child = Option.get (P.image_of_proc child_proc) in
  Alcotest.(check bool) "distinct images" true (not (parent == child));
  Alcotest.(check bool) "child heap rebound to child aspace" true
    (Heap.aspace child.P.i_heap == K.aspace child_proc);
  (* the child allocated one more block than the parent *)
  let count img =
    let n = ref 0 in
    Heap.iter_live img.P.i_heap (fun _ -> incr n);
    !n
  in
  Alcotest.(check int) "parent blocks" 1 (count parent);
  Alcotest.(check int) "child blocks" 2 (count child);
  Alcotest.(check bool) "child restarted startup tracking" true
    (child.P.i_startup_complete = false)

let () =
  Alcotest.run "mcr_program"
    [
      ("instr", [ Alcotest.test_case "layering" `Quick test_instr_layering ]);
      ( "shadow-stack",
        [
          Alcotest.test_case "fn balance" `Quick test_fn_stack_balance;
          Alcotest.test_case "fn pops on exception" `Quick test_fn_pops_on_exception;
          Alcotest.test_case "masquerade restores" `Quick test_masquerade_restores;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "metadata recorded" `Quick test_malloc_records_metadata;
          Alcotest.test_case "baseline untagged" `Quick test_malloc_uninstrumented_under_baseline;
          Alcotest.test_case "array types" `Quick test_malloc_n_array_type;
          Alcotest.test_case "globals/strings/funcs" `Quick test_globals_strings_funcs;
          Alcotest.test_case "stack vars" `Quick test_stack_var_key_and_root;
          Alcotest.test_case "nested pools" `Quick test_subpool_nested_lifecycle;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "passthrough unlisted" `Quick test_blocking_passthrough_when_unlisted;
          Alcotest.test_case "instruments listed" `Quick test_blocking_instruments_listed_qpoint;
          Alcotest.test_case "total timeout honored" `Quick
            test_wrapped_sem_wait_honors_total_timeout;
        ] );
      ( "versions-loader",
        [
          Alcotest.test_case "main required" `Quick test_make_version_requires_main;
          Alcotest.test_case "diff counts" `Quick test_diff_versions_counts;
          Alcotest.test_case "fork image isolation" `Quick test_fork_image_isolates_runtime_state;
        ] );
    ]
