(* Client-perceived latency observability: the open-loop load driver, the
   request-conservation ledger through updates (parking on and off, faults
   injected and not), the client-impact correlation, and the fleet-wide
   latency merge. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Testbed = Mcr_workloads.Testbed
module Loadgen = Mcr_workloads.Loadgen
module Stats = Mcr_util.Stats
module Metrics = Mcr_obs.Metrics
module Flight = Mcr_obs.Flight
module Client_impact = Mcr_obs.Client_impact
module Fleet = Mcr_fleet.Fleet

(* Same version-pair rule as bench/latencybench: the web servers keep
   thousands of connections in one address space and need a large heap;
   vsftpd/sshd fork per session and must keep the default one. *)
let heap_words = 8 * 1024 * 1024

let versions server =
  match (server : Testbed.server) with
  | Testbed.Nginx ->
      (Mcr_servers.Nginx_sim.base ~heap_words (), Mcr_servers.Nginx_sim.final ~heap_words ())
  | Testbed.Httpd ->
      (Mcr_servers.Httpd_sim.base ~heap_words (), Mcr_servers.Httpd_sim.final ~heap_words ())
  | Testbed.Vsftpd -> (Mcr_servers.Vsftpd_sim.base (), Mcr_servers.Vsftpd_sim.final ())
  | Testbed.Sshd -> (Mcr_servers.Sshd_sim.base (), Mcr_servers.Sshd_sim.final ())

let shrink_ftp_payload kernel server =
  match (server : Testbed.server) with
  | Testbed.Vsftpd ->
      K.fs_write kernel
        ~path:(Mcr_servers.Vsftpd_sim.ftp_root ^ "/big.bin")
        (String.make 1024 'f')
  | _ -> ()

(* One update bracketed by an open-loop stream; returns the driver, the
   update report, and the kernel's parking ledger. *)
let run_stream server ~seed ~parking ~precopy ~remap ~fault_seed ~requests ~rate () =
  let kernel = K.create () in
  let base_version, final_version = versions server in
  let m = Testbed.launch ~version:base_version kernel server in
  shrink_ftp_payload kernel server;
  let policy =
    Policy.default
    |> Policy.with_concurrent_transfer true
    |> Policy.with_request_parking parking
    |> Policy.with_precopy precopy
    |> Policy.with_transfer_remap remap
    |> Policy.with_fault_seed fault_seed
    |> Policy.with_deadlines ~quiesce_ns:(Some 3_000_000_000)
         ~update_ns:(Some 15_000_000_000)
  in
  let lg =
    Loadgen.start kernel ~server ~seed ~metrics:(Manager.metrics m) ~rate ~requests ()
  in
  K.run_for kernel 3_000_000;
  let _m2, report = Manager.update m ~policy final_version in
  Loadgen.drive lg;
  (lg, report, K.parking_stats kernel)

(* ------------------------------------------------------------------ *)
(* Determinism: same seed, same geometry — identical per-request stamps. *)

let test_poisson_determinism () =
  let go () =
    let lg, _, _ =
      run_stream Testbed.Httpd ~seed:7 ~parking:true ~precopy:false ~remap:false
        ~fault_seed:None ~requests:300 ~rate:30_000 ()
    in
    lg
  in
  let a = go () and b = go () in
  Alcotest.(check int) "issued" (Loadgen.issued a) (Loadgen.issued b);
  Alcotest.(check bool) "identical record streams" true
    (Loadgen.records a = Loadgen.records b);
  Alcotest.(check int) "identical p99.9" (Loadgen.exact_percentile a 99.9)
    (Loadgen.exact_percentile b 99.9);
  let sa = Loadgen.summary a and sb = Loadgen.summary b in
  Alcotest.(check bool) "identical histograms" true (sa = sb);
  (* a different seed draws a different schedule *)
  let c, _, _ =
    run_stream Testbed.Httpd ~seed:8 ~parking:true ~precopy:false ~remap:false
      ~fault_seed:None ~requests:300 ~rate:30_000 ()
  in
  Alcotest.(check bool) "different seed, different stamps" false
    (Loadgen.records a = Loadgen.records c)

(* ------------------------------------------------------------------ *)
(* Conservation: across servers, pre-copy, remap, parking and injected
   faults, no request is lost and no parked connection is stranded. *)

let servers = [| Testbed.Nginx; Testbed.Httpd; Testbed.Vsftpd; Testbed.Sshd |]

let prop_conservation =
  QCheck.Test.make ~name:"requests and parked connections are conserved" ~count:12
    QCheck.(
      quad
        (int_range 0 (Array.length servers - 1))
        (triple bool bool bool)
        (int_range 0 1_000_000) bool)
    (fun (si, (precopy, remap, parking), seed, inject) ->
      let server = servers.(si) in
      let fault_seed = if inject then Some seed else None in
      let requests = 120 in
      let lg, _report, ps =
        run_stream server ~seed:5 ~parking ~precopy ~remap ~fault_seed ~requests
          ~rate:20_000 ()
      in
      let issued = Loadgen.issued lg in
      let completed = Loadgen.completed lg in
      let errored = Loadgen.errored lg in
      if issued <> requests then
        QCheck.Test.fail_reportf "issued %d <> scheduled %d" issued requests;
      if completed + errored <> issued then
        QCheck.Test.fail_reportf "completed %d + errored %d <> issued %d" completed
          errored issued;
      if ps.K.parked <> ps.K.resumed + ps.K.aborted then
        QCheck.Test.fail_reportf "parked %d <> resumed %d + aborted %d" ps.K.parked
          ps.K.resumed ps.K.aborted;
      if (not parking) && ps.K.parked <> 0 then
        QCheck.Test.fail_reportf "parked %d without request_parking" ps.K.parked;
      (* without injected faults the stream must be loss- and abort-free *)
      if fault_seed = None && errored > 0 then
        QCheck.Test.fail_reportf "%d errored without faults" errored;
      if fault_seed = None && ps.K.aborted > 0 then
        QCheck.Test.fail_reportf "%d aborted without faults" ps.K.aborted;
      true)

(* ------------------------------------------------------------------ *)
(* Client impact: window arithmetic, stall-segment attribution, JSON. *)

let impact_record =
  {
    Flight.f_seq = 1;
    f_attempt = 0;
    f_prog = "t";
    f_from = "a";
    f_to = "b";
    f_success = true;
    f_start_ns = 0;
    f_total_ns = 200_000;
    f_downtime_ns = 100_000;
    f_precopy = false;
    f_workers = 1;
    f_remapped_words = 0;
    f_skipped_clean_words = 0;
    f_rounds = [];
    f_attribution =
      {
        Flight.zero_attribution with
        Flight.a_quiesce_ns = 10_000;
        a_copy_ns = 30_000;
        a_relink_ns = 60_000;
      };
    f_slo = None;
    f_explanation = None;
    f_prior = [];
  }

let req ?(id = 0) ?(retries = 0) ?(ok = true) scheduled complete =
  {
    Client_impact.q_id = id;
    q_scheduled_ns = scheduled;
    q_first_byte_ns = -1;
    q_complete_ns = complete;
    q_retries = retries;
    q_ok = ok;
  }

let test_client_impact_segments () =
  (* window is [start + total - downtime, start + total) = [100k, 200k) *)
  Alcotest.(check (option (pair int int)))
    "window" (Some (100_000, 200_000))
    (Client_impact.window impact_record);
  let seg r = Client_impact.stalling_segment impact_record r in
  Alcotest.(check (option string)) "completed before window" None (seg (req 50_000 90_000));
  Alcotest.(check (option string)) "scheduled after window" None (seg (req 250_000 260_000));
  Alcotest.(check (option string))
    "in flight at window open -> first segment" (Some "quiesce")
    (seg (req 50_000 150_000));
  Alcotest.(check (option string))
    "arrives 15us in -> copy" (Some "copy")
    (seg (req 115_000 250_000));
  Alcotest.(check (option string))
    "arrives 50us in -> relink" (Some "relink")
    (seg (req 150_000 250_000));
  let zero = { impact_record with Flight.f_downtime_ns = 0 } in
  Alcotest.(check (option (pair int int))) "no downtime, no window" None
    (Client_impact.window zero);
  let s =
    Client_impact.analyze impact_record
      [ req 50_000 90_000; req 50_000 150_000; req 115_000 250_000;
        req ~retries:2 150_000 250_000; req 250_000 260_000 ]
  in
  Alcotest.(check int) "total" 5 s.Client_impact.ci_total;
  Alcotest.(check int) "stalled" 3 s.Client_impact.ci_stalled;
  Alcotest.(check int) "retried" 1 s.Client_impact.ci_retried;
  Alcotest.(check (list (pair string int)))
    "per-segment counts in waterfall order"
    [ ("quiesce", 1); ("copy", 1); ("relink", 1) ]
    s.Client_impact.ci_by_segment;
  Alcotest.(check int) "stalled max" 135_000 s.Client_impact.ci_stalled_max_ns

let test_client_impact_json_roundtrip () =
  let reqs = [ req ~id:1 10 20; req ~id:2 ~retries:3 ~ok:false 30 90 ] in
  let json = Client_impact.reqs_to_json ~server:"httpd" reqs in
  match Client_impact.reqs_of_json json with
  | Error e -> Alcotest.failf "round trip: %s" e
  | Ok (server, back) ->
      Alcotest.(check string) "server" "httpd" server;
      Alcotest.(check bool) "requests" true (back = reqs)

(* The end-to-end claim: a real update's flight record plus the driver's
   stamps attribute every stalled request to a waterfall segment. *)
let test_client_impact_end_to_end () =
  let lg, report, _ =
    run_stream Testbed.Httpd ~seed:3 ~parking:false ~precopy:false ~remap:false
      ~fault_seed:None ~requests:400 ~rate:40_000 ()
  in
  let flight = report.Manager.flight in
  match Client_impact.reqs_of_json (Loadgen.requests_json lg) with
  | Error e -> Alcotest.failf "requests_json: %s" e
  | Ok (_, reqs) ->
      let s = Client_impact.analyze flight reqs in
      Alcotest.(check int) "all stamps analyzed" 400 s.Client_impact.ci_total;
      Alcotest.(check bool) "some requests stalled in the window" true
        (s.Client_impact.ci_stalled > 0);
      let attributed =
        List.fold_left (fun acc (_, n) -> acc + n) 0 s.Client_impact.ci_by_segment
      in
      Alcotest.(check int) "every stalled request names a segment"
        s.Client_impact.ci_stalled attributed;
      let rendered = Mcr_obs.Postmortem.render_client_impact flight reqs in
      Alcotest.(check bool) "render mentions the window" true
        (String.length rendered > 0)

(* ------------------------------------------------------------------ *)
(* Policy plumbing. *)

let test_policy_concurrent_transfer_kv () =
  let p = Policy.default |> Policy.with_concurrent_transfer true in
  (match Policy.of_kv (Policy.to_kv p) with
  | Ok q -> Alcotest.(check bool) "round trips" true q.Policy.concurrent_transfer
  | Error e -> Alcotest.failf "of_kv: %s" e);
  match Policy.of_kv (Policy.to_kv Policy.default) with
  | Ok q -> Alcotest.(check bool) "defaults off" false q.Policy.concurrent_transfer
  | Error e -> Alcotest.failf "of_kv default: %s" e

(* ------------------------------------------------------------------ *)
(* Fleet-wide latency merge. *)

let test_fleet_client_latency_merge () =
  let fleet = Fleet.of_testbed Testbed.Httpd ~n:2 in
  Alcotest.(check bool) "no observations yet" true (Fleet.client_latency fleet = None);
  let per_instance = 40 in
  for i = 0 to 1 do
    let lg =
      Loadgen.start (Fleet.instance_kernel fleet i) ~server:Testbed.Httpd
        ~metrics:(Manager.metrics (Fleet.manager fleet i))
        ~rate:20_000 ~requests:per_instance ()
    in
    Loadgen.drive lg;
    Alcotest.(check int) "instance stream completed" per_instance (Loadgen.completed lg)
  done;
  (match Fleet.client_latency fleet with
  | None -> Alcotest.fail "merged latency missing"
  | Some h ->
      Alcotest.(check int) "merged count = sum of instances" (2 * per_instance)
        h.Metrics.total;
      Alcotest.(check bool) "merged tail is positive" true
        ((Metrics.hist_snapshot_summary h).Stats.p999_ns > 0));
  let status = Fleet.status_text fleet in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "status_text surfaces client latency" true
    (contains status "client latency:")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_latency"
    [
      ( "loadgen",
        [
          Alcotest.test_case "poisson determinism" `Quick test_poisson_determinism;
          qt prop_conservation;
        ] );
      ( "client-impact",
        [
          Alcotest.test_case "segment attribution" `Quick test_client_impact_segments;
          Alcotest.test_case "json round trip" `Quick test_client_impact_json_roundtrip;
          Alcotest.test_case "end to end" `Quick test_client_impact_end_to_end;
        ] );
      ( "policy",
        [
          Alcotest.test_case "concurrent_transfer kv" `Quick
            test_policy_concurrent_transfer_kv;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "client latency merge" `Quick
            test_fleet_client_latency_merge;
        ] );
    ]
