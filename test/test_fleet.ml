(* The fleet orchestration layer: balancer determinism, wave-plan algebra,
   canary-gated rollouts over real simulated servers (clean completion,
   fault halt, SLO-free rollback of already-updated instances), the FLEET
   ctl command family, the fleet flight summary codec, and two properties:

   - every fleet size x wave policy x fault seed either completes with all
     instances on the target version and byte-identical committed images,
     or halts with consistent versions and a named blocking verdict;
   - the v1 frame decoders are total — random bytes never raise, malformed
     input classifies into the typed error constructors. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Ctl = Mcr_core.Ctl
module Frame = Mcr_core.Frame
module Metrics = Mcr_obs.Metrics
module Fleet_flight = Mcr_obs.Fleet_flight
module Fleet_policy = Mcr_fleet.Fleet_policy
module Balancer = Mcr_fleet.Balancer
module Fleet = Mcr_fleet.Fleet
module Rollout = Mcr_fleet.Rollout
module Testbed = Mcr_workloads.Testbed
module Listing1 = Mcr_servers.Listing1

let drive kernel pred =
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) pred)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Balancer *)

let test_balancer_even_split () =
  let b = Balancer.create ~n:4 in
  let routed = Balancer.route b ~n:100 in
  Alcotest.(check (list (pair int int)))
    "even split" [ (0, 25); (1, 25); (2, 25); (3, 25) ] routed;
  Alcotest.(check int) "routed total" 100 (Balancer.routed_total b);
  Alcotest.(check int) "no errors" 0 (Balancer.errors_total b)

let test_balancer_round_robin_fair () =
  (* 5 requests over 4 backends leave one extra; the cursor must rotate it
     so four calls land 5 on every backend — and a second balancer routes
     identically (determinism). *)
  let totals = Array.make 4 0 in
  let b = Balancer.create ~n:4 in
  for _ = 1 to 4 do
    List.iter (fun (i, c) -> totals.(i) <- totals.(i) + c) (Balancer.route b ~n:5)
  done;
  Array.iter (fun t -> Alcotest.(check int) "fair rotation" 5 t) totals;
  let b2 = Balancer.create ~n:4 in
  Alcotest.(check (list (pair int int)))
    "deterministic" (Balancer.route (Balancer.create ~n:4) ~n:5) (Balancer.route b2 ~n:5)

let test_balancer_drain_and_errors () =
  let b = Balancer.create ~n:2 in
  Balancer.set_state b 0 Balancer.Draining;
  Alcotest.(check int) "draining leaves one" 1 (Balancer.serving b);
  Alcotest.(check (list (pair int int))) "routes around" [ (1, 10) ] (Balancer.route b ~n:10);
  Balancer.set_state b 1 Balancer.Out;
  Alcotest.(check (list (pair int int))) "nobody serving" [] (Balancer.route b ~n:7);
  Alcotest.(check int) "client errors counted" 7 (Balancer.errors_total b);
  Balancer.set_state b 0 Balancer.Serving;
  Alcotest.(check (list (pair int int))) "rejoined" [ (0, 3) ] (Balancer.route b ~n:3)

(* ------------------------------------------------------------------ *)
(* Wave planning *)

let test_plan_algebra () =
  for n = 1 to 12 do
    for canary = 1 to 3 do
      for wave = 1 to 4 do
        for mu = 1 to 4 do
          let pol =
            Fleet_policy.default |> Fleet_policy.with_canary canary
            |> Fleet_policy.with_wave wave
            |> Fleet_policy.with_max_unavailable mu
          in
          let waves = Rollout.plan pol ~n in
          Alcotest.(check (list int)) "covers every id once" (List.init n Fun.id)
            (List.concat waves);
          let first = List.hd waves in
          Alcotest.(check bool) "canary clamped"
            true
            (List.length first <= max 1 (min canary mu));
          List.iteri
            (fun i w ->
              if i > 0 then
                Alcotest.(check bool) "wave clamped" true
                  (List.length w <= max 1 (min wave mu)))
            waves
        done
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Listing1 fleets: the cheap deterministic server for fleet-shape tests *)

let listing1_fleet ?policy n =
  Fleet.create ?policy ~prog:"listing1" ~n
    ~spawn:(fun _ ->
      let kernel = K.create () in
      K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
      let m = Manager.launch kernel (Listing1.v1 ()) in
      assert (Manager.wait_startup m ());
      (kernel, m))
    ~health:(fun _ _ -> true)
    ~target:(fun _ -> Listing1.v2 ())
    ~revert:(fun _ -> Listing1.v1 ())
    ()

let all_tags fleet n = List.init n (Fleet.version_tag fleet)

(* ------------------------------------------------------------------ *)
(* Rollouts *)

let test_clean_rollout_nginx () =
  let policy =
    Fleet_policy.default |> Fleet_policy.with_wave 2 |> Fleet_policy.with_max_unavailable 2
  in
  let fleet = Fleet.of_testbed ~policy Testbed.Nginx ~n:4 in
  let s = Rollout.execute fleet in
  Alcotest.(check bool) "completed" false s.Fleet_flight.fs_halted;
  Alcotest.(check int) "all updated" 4 s.Fleet_flight.fs_updated;
  Alcotest.(check int) "no client errors" 0 s.Fleet_flight.fs_client_errors;
  Alcotest.(check bool) "availability bound held" true (s.Fleet_flight.fs_min_serving >= 2);
  List.iter
    (fun tag -> Alcotest.(check string) "on target" "1.0.15" tag)
    (all_tags fleet 4);
  let snap = Fleet.metrics_snapshot fleet in
  Alcotest.(check (option int)) "serving gauge" (Some 4)
    (Metrics.find_gauge snap "mcr_fleet_serving");
  Alcotest.(check (option int)) "three promotions" (Some 3)
    (Metrics.find_counter snap "mcr_fleet_wave_promotions_total");
  Alcotest.(check (option int)) "one rollout" (Some 1)
    (Metrics.find_counter snap "mcr_fleet_rollouts_total");
  Alcotest.(check (option int)) "no halts" (Some 0)
    (Metrics.find_counter snap "mcr_fleet_rollout_halts_total")

let test_canary_fault_halts () =
  (* seed 3 is a transfer conflict — the canary must roll back and gate
     the whole fleet; nobody else ever leaves the base version *)
  let policy =
    Fleet_policy.default |> Fleet_policy.with_wave 1 |> Fleet_policy.with_max_unavailable 1
    |> Fleet_policy.with_fault ~seed:(Some 3) ~instances:[ 0 ]
  in
  let fleet = Fleet.of_testbed ~policy Testbed.Nginx ~n:4 in
  let s = Rollout.execute fleet in
  Alcotest.(check bool) "halted" true s.Fleet_flight.fs_halted;
  Alcotest.(check int) "nothing updated" 0 s.Fleet_flight.fs_updated;
  Alcotest.(check int) "single canary wave" 1 (List.length s.Fleet_flight.fs_waves);
  (match s.Fleet_flight.fs_blocking with
  | None -> Alcotest.fail "no blocking verdict"
  | Some v ->
      Alcotest.(check int) "canary blocked" 0 v.Fleet_flight.v_instance;
      Alcotest.(check bool) "named reason" true (v.Fleet_flight.v_reason <> None);
      Alcotest.(check bool) "flight kept" true (v.Fleet_flight.v_flight <> None));
  List.iter
    (fun tag -> Alcotest.(check string) "still on base" "0.8.54" tag)
    (all_tags fleet 4);
  let snap = Fleet.metrics_snapshot fleet in
  Alcotest.(check (option int)) "one wave halt" (Some 1)
    (Metrics.find_counter snap "mcr_fleet_wave_halts_total");
  Alcotest.(check (option int)) "one rollout halt" (Some 1)
    (Metrics.find_counter snap "mcr_fleet_rollout_halts_total")

let test_rollback_updated_reverts () =
  (* canary commits cleanly, wave 1 hits a startup crash (seed 3 shifted
     to instance 1 = seed 4), and the halt policy reverts the canary *)
  let policy =
    Fleet_policy.default |> Fleet_policy.with_canary 1 |> Fleet_policy.with_wave 1
    |> Fleet_policy.with_max_unavailable 1
    |> Fleet_policy.with_halt Fleet_policy.Rollback_updated
    |> Fleet_policy.with_fault ~seed:(Some 3) ~instances:[ 1 ]
  in
  let fleet = listing1_fleet ~policy 4 in
  let s = Rollout.execute fleet in
  Alcotest.(check bool) "halted" true s.Fleet_flight.fs_halted;
  (match s.Fleet_flight.fs_blocking with
  | None -> Alcotest.fail "no blocking verdict"
  | Some v -> Alcotest.(check int) "wave 1 instance blocked" 1 v.Fleet_flight.v_instance);
  Alcotest.(check int) "canary reverted" 1 s.Fleet_flight.fs_reverted;
  Alcotest.(check int) "nothing left on target" 0 s.Fleet_flight.fs_updated;
  List.iter
    (fun tag -> Alcotest.(check string) "all back on v1" "1.0" tag)
    (all_tags fleet 4);
  let kinds = List.map (fun w -> w.Fleet_flight.w_kind) s.Fleet_flight.fs_waves in
  Alcotest.(check (list string)) "rollback wave recorded" [ "canary"; "wave"; "rollback" ]
    kinds

let test_byte_identical_commit () =
  let fleet = listing1_fleet 3 in
  let s = Rollout.execute fleet in
  Alcotest.(check int) "all updated" 3 s.Fleet_flight.fs_updated;
  let fp = Fleet.image_fingerprint fleet 0 in
  for i = 1 to 2 do
    Alcotest.(check bool) "identical committed images" true
      (Fleet.image_fingerprint fleet i = fp)
  done

(* ------------------------------------------------------------------ *)
(* The FLEET ctl command family *)

let fleet_request fleet command =
  let kernel = Fleet.ctl_kernel fleet in
  let result = ref None in
  Ctl.request_v kernel ~path:(Fleet.ctl_path fleet) ~command
    ~on_result:(fun r -> result := Some r)
    ();
  drive kernel (fun () -> !result <> None);
  match !result with Some r -> r | None -> Error (Frame.Transport "no reply")

let test_ctl_status_and_explain () =
  let fleet = listing1_fleet 2 in
  (match fleet_request fleet "FLEET STATUS" with
  | Ok payload ->
      Alcotest.(check bool) "status headline" true (contains payload "fleet listing1");
      Alcotest.(check bool) "per-instance lines" true (contains payload "instance 1: v1.0")
  | Error e -> Alcotest.failf "STATUS refused: %a" Frame.pp_error e);
  (match fleet_request fleet "FLEET EXPLAIN" with
  | Error (Frame.Refused r) -> Alcotest.(check string) "no rollouts yet" "no rollouts" r
  | _ -> Alcotest.fail "EXPLAIN before any rollout must refuse");
  (match fleet_request fleet "FLEET BOGUS" with
  | Error (Frame.Refused r) -> Alcotest.(check bool) "usage" true (contains r "usage")
  | _ -> Alcotest.fail "bad subcommand must refuse");
  let s = Rollout.execute fleet in
  match fleet_request fleet "FLEET EXPLAIN" with
  | Ok payload -> begin
      match Fleet_flight.of_json payload with
      | Ok s2 ->
          Alcotest.(check int) "size round-trips" s.Fleet_flight.fs_size
            s2.Fleet_flight.fs_size;
          Alcotest.(check int) "updated round-trips" s.Fleet_flight.fs_updated
            s2.Fleet_flight.fs_updated
      | Error e -> Alcotest.failf "EXPLAIN payload did not parse: %s" e
    end
  | Error e -> Alcotest.failf "EXPLAIN refused: %a" Frame.pp_error e

let test_rollout_over_ctl () =
  let policy = Fleet_policy.default |> Fleet_policy.with_wave 1 in
  let fleet = listing1_fleet ~policy 2 in
  match Rollout.request_over_ctl fleet with
  | Error e -> Alcotest.failf "rollout over ctl failed: %s" e
  | Ok s ->
      Alcotest.(check bool) "completed" false s.Fleet_flight.fs_halted;
      Alcotest.(check int) "all updated" 2 s.Fleet_flight.fs_updated;
      Alcotest.(check bool) "summary stored" true (Fleet.last_summary fleet <> None)

(* ------------------------------------------------------------------ *)
(* Stale control sockets: a crashed fleetd leaves its socket name behind
   (AF_UNIX names survive close); the next incarnation must bind anyway. *)

module S = Mcr_simos.Sysdefs
module Aspace = Mcr_vmem.Aspace
module Ctl_server = Mcr_core.Ctl_server

let test_stale_socket_rebind () =
  let kernel = K.create () in
  let path = "/run/mcr/fleet.listing1.sock" in
  let bound = ref false in
  let p1 =
    K.spawn_process kernel
      ~image:(K.Fresh_image (Aspace.create ()))
      ~name:"fleetd-1" ~entry:"main"
      ~main:(fun _ ->
        (match Ctl_server.bind kernel ~path with
        | S.Ok_fd _ -> bound := true
        | _ -> ());
        ignore (K.syscall (S.Sem_wait { name = "fleetd1.park"; timeout_ns = None })))
      ()
  in
  drive kernel (fun () -> !bound);
  Alcotest.(check bool) "first incarnation bound" true !bound;
  (* binding over a LIVE listener must still be refused *)
  let second = ref None in
  let _p_live =
    K.spawn_process kernel
      ~image:(K.Fresh_image (Aspace.create ()))
      ~name:"fleetd-dup" ~entry:"main"
      ~main:(fun _ -> second := Some (Ctl_server.bind kernel ~path))
      ()
  in
  drive kernel (fun () -> !second <> None);
  (match !second with
  | Some (S.Err S.EADDRINUSE) -> ()
  | Some _ -> Alcotest.fail "bind over a live listener must fail EADDRINUSE"
  | None -> Alcotest.fail "duplicate bind never ran");
  (* crash the first incarnation: the socket name is left behind *)
  K.kill_process kernel p1 ~status:1;
  Alcotest.(check bool) "name survives the crash but is stale" false
    (K.path_active kernel ~path);
  (* the second incarnation serves on the same path: bind unlinks the stale
     name at listen time, on the listener thread *)
  let p2 =
    K.spawn_process kernel
      ~image:(K.Fresh_image (Aspace.create ()))
      ~name:"fleetd-2" ~entry:"main"
      ~main:(fun _ ->
        ignore (K.syscall (S.Sem_wait { name = "fleetd2.park"; timeout_ns = None })))
      ()
  in
  Ctl_server.spawn kernel p2 ~name:"fleet-ctl" ~path
    ~dispatch:(fun ~versioned:_ cmd -> if cmd = "PING" then "PONG" else "ERR")
    ();
  let reply = ref None in
  Ctl.request kernel ~path ~command:"PING" ~on_reply:(fun r -> reply := Some r);
  drive kernel (fun () -> !reply <> None);
  Alcotest.(check (option string)) "second incarnation answers" (Some "PONG") !reply

(* ------------------------------------------------------------------ *)
(* Summary codec *)

let test_summary_json_roundtrip () =
  (* halted summary: the richest shape (blocking verdict + embedded flight
     + rollback wave) *)
  let policy =
    Fleet_policy.default |> Fleet_policy.with_wave 1 |> Fleet_policy.with_max_unavailable 1
    |> Fleet_policy.with_halt Fleet_policy.Rollback_updated
    |> Fleet_policy.with_fault ~seed:(Some 3) ~instances:[ 1 ]
  in
  let fleet = listing1_fleet ~policy 3 in
  let s = Rollout.execute fleet in
  let json = Fleet_flight.to_json s in
  match Fleet_flight.of_json json with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok s2 -> Alcotest.(check string) "identical re-encoding" json (Fleet_flight.to_json s2)

(* ------------------------------------------------------------------ *)
(* Property: every size x policy x seed either completes everywhere with
   byte-identical images, or halts consistently with a named verdict. *)

let prop_rollout_outcome =
  QCheck.Test.make ~name:"fleet rollouts complete fully or halt consistently" ~count:30
    QCheck.(
      quad (int_range 2 5) (int_range 1 3) QCheck.bool
        (option (pair (int_range 0 50) (int_range 0 4))))
    (fun (n, wave, rollback, fault) ->
      let policy =
        Fleet_policy.default |> Fleet_policy.with_wave wave
        |> Fleet_policy.with_max_unavailable wave
        |> Fleet_policy.with_halt
             (if rollback then Fleet_policy.Rollback_updated else Fleet_policy.Halt_only)
      in
      let policy =
        match fault with
        | Some (seed, i) ->
            Fleet_policy.with_fault ~seed:(Some seed) ~instances:[ i mod n ] policy
        | None -> policy
      in
      let fleet = listing1_fleet ~policy n in
      let s = Rollout.execute fleet in
      let tags = all_tags fleet n in
      if not s.Fleet_flight.fs_halted then begin
        (* completion: everyone on v2, committed images byte-identical *)
        if s.Fleet_flight.fs_updated <> n then
          QCheck.Test.fail_reportf "completed with %d/%d updated"
            s.Fleet_flight.fs_updated n;
        List.iter
          (fun t -> if t <> "2.0" then QCheck.Test.fail_reportf "completed but runs %s" t)
          tags;
        let fp = Fleet.image_fingerprint fleet 0 in
        List.iteri
          (fun i () ->
            if Fleet.image_fingerprint fleet i <> fp then
              QCheck.Test.fail_reportf "instance %d image differs after commit" i)
          (List.init n (fun _ -> ()));
        true
      end
      else begin
        (* halt: a named blocking verdict, and consistent versions — all
           base under rollback_updated, otherwise exactly fs_updated on
           target and the rest on base *)
        (match s.Fleet_flight.fs_blocking with
        | None -> QCheck.Test.fail_reportf "halted without a blocking verdict"
        | Some v ->
            if v.Fleet_flight.v_reason = None then
              QCheck.Test.fail_reportf "blocking verdict without a reason");
        let on_target = List.length (List.filter (fun t -> t = "2.0") tags) in
        let on_base = List.length (List.filter (fun t -> t = "1.0") tags) in
        if on_target + on_base <> n then
          QCheck.Test.fail_reportf "inconsistent fleet versions: %s"
            (String.concat "," tags);
        if rollback && on_target <> 0 then
          QCheck.Test.fail_reportf "rollback_updated left %d on target" on_target;
        if on_target <> s.Fleet_flight.fs_updated then
          QCheck.Test.fail_reportf "summary says %d updated, fleet runs %d"
            s.Fleet_flight.fs_updated on_target;
        true
      end)

(* Property: dirty-driven transfer commits exactly the bytes a full
   transfer would, with or without the zero-copy remap, for every server x
   workload x worker count — and a seeded-fault rollback (or commit) never
   leaks a shared page frame past the update window. *)

module Policy = Mcr_core.Policy

let prop_dirty_transfer_byte_identical =
  QCheck.Test.make
    ~name:"dirty-driven transfer (+/- remap) is byte-identical; no shared-frame leaks" ~count:4
    QCheck.(triple (int_range 0 3) (int_range 0 1) (int_range 0 50))
    (fun (server_i, w_i, seed) ->
      let server = [| Testbed.Nginx; Testbed.Httpd; Testbed.Vsftpd; Testbed.Sshd |].(server_i) in
      let workers = [| 1; 4 |].(w_i) in
      let scale = 500 + (seed mod 3) * 500 in
      let mk update_policy =
        let policy = Fleet_policy.default |> Fleet_policy.with_update update_policy in
        let fleet = Fleet.of_testbed ~policy server ~n:1 in
        ignore (Testbed.benchmark (Fleet.instance_kernel fleet 0) server ~scale ());
        fleet
      in
      let base = Policy.default |> Policy.with_transfer_workers workers in
      let modes =
        [
          ("full", mk (Policy.with_dirty_only false base));
          ("dirty", mk base);
          ("dirty+remap", mk (Policy.with_transfer_remap true base));
        ]
      in
      List.iter
        (fun (name, f) ->
          let r = Fleet.update_instance f 0 `Target in
          if not r.Manager.success then
            QCheck.Test.fail_reportf "%s update rolled back: %s" name
              (match r.Manager.failure with
              | Some reason -> Mcr_error.to_string reason
              | None -> "?"))
        modes;
      let fp = Fleet.image_fingerprint (snd (List.hd modes)) 0 in
      List.iter
        (fun (name, f) ->
          if Fleet.image_fingerprint f 0 <> fp then
            QCheck.Test.fail_reportf "%s commit is not byte-identical to the full transfer" name)
        modes;
      (* whatever a seeded fault does to a remapping update — rollback or
         commit — no shared frame may outlive the window *)
      let faulted =
        mk (base |> Policy.with_transfer_remap true |> Policy.with_fault_seed (Some seed))
      in
      ignore (Fleet.update_instance faulted 0 `Target);
      List.iter
        (fun (im : Mcr_program.Progdef.image) ->
          let n = Aspace.shared_frame_count im.Mcr_program.Progdef.i_aspace in
          if n <> 0 then
            QCheck.Test.fail_reportf "faulted remap update leaked %d shared frames" n)
        (Manager.images (Fleet.manager faulted 0));
      true)

(* Property: the frame decoders are total. *)

let prop_frame_decoders_total =
  QCheck.Test.make ~name:"frame decoders never raise on random bytes" ~count:1000
    QCheck.(string_gen Gen.char)
    (fun s ->
      (match Frame.parse_request s with
      | `Hello _ | `Malformed_hello -> ()
      | `Legacy raw ->
          if raw <> s then QCheck.Test.fail_reportf "legacy frame not passed through");
      (match Frame.parse_reply ~version:1 s with
      | Ok _ | Error (Frame.Version_mismatch _) | Error (Frame.Refused _)
      | Error (Frame.Transport _) -> ());
      true)

let prop_malformed_hello_typed =
  QCheck.Test.make ~name:"malformed HELLO versions classify as typed errors" ~count:200
    QCheck.(map (fun v -> "HELLO " ^ v) (string_gen_of_size Gen.(1 -- 8) Gen.printable))
    (fun frame ->
      match Frame.parse_request frame with
      | `Hello _ | `Malformed_hello -> true
      | `Legacy _ -> QCheck.Test.fail_reportf "HELLO-prefixed frame classified as legacy")

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fleet"
    [
      ( "balancer",
        [
          Alcotest.test_case "even split" `Quick test_balancer_even_split;
          Alcotest.test_case "round-robin fairness" `Quick test_balancer_round_robin_fair;
          Alcotest.test_case "drain and errors" `Quick test_balancer_drain_and_errors;
        ] );
      ("plan", [ Alcotest.test_case "wave algebra" `Quick test_plan_algebra ]);
      ( "rollout",
        [
          Alcotest.test_case "clean nginx rollout" `Quick test_clean_rollout_nginx;
          Alcotest.test_case "canary fault halts" `Quick test_canary_fault_halts;
          Alcotest.test_case "rollback_updated reverts" `Quick test_rollback_updated_reverts;
          Alcotest.test_case "byte-identical commit" `Quick test_byte_identical_commit;
        ] );
      ( "ctl",
        [
          Alcotest.test_case "FLEET STATUS/EXPLAIN" `Quick test_ctl_status_and_explain;
          Alcotest.test_case "FLEET ROLLOUT over socket" `Quick test_rollout_over_ctl;
          Alcotest.test_case "stale socket rebind" `Quick test_stale_socket_rebind;
        ] );
      ("codec", [ Alcotest.test_case "summary round-trip" `Quick test_summary_json_roundtrip ]);
      ( "props",
        [
          qt prop_rollout_outcome;
          qt prop_dirty_transfer_byte_identical;
          qt prop_frame_decoders_total;
          qt prop_malformed_hello_typed;
        ]
      );
    ]
