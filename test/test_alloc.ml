(* Tests for Mcr_alloc: heap allocator with in-band tags, global
   reallocation, startup separability, pools, slabs, site registry. *)

open Mcr_alloc
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Region = Mcr_vmem.Region

let fresh_heap ?(instrumented = true) ?(size = 64 * 1024) () =
  let sp = Aspace.create () in
  (sp, Heap.create sp ~instrumented ~name:"heap" ~size ())

(* ------------------------------------------------------------------ *)
(* Heap basics *)

let test_malloc_returns_zeroed () =
  let sp, h = fresh_heap () in
  let a = Heap.malloc h 8 in
  for i = 0 to 7 do
    Alcotest.(check int) "zeroed" 0 (Aspace.read_word sp (Addr.add_words a i))
  done

let test_malloc_distinct_blocks () =
  let _, h = fresh_heap () in
  let a = Heap.malloc h 4 and b = Heap.malloc h 4 in
  Alcotest.(check bool) "disjoint" true (abs (a - b) >= 4 * Addr.word_size)

let test_malloc_tags_recorded () =
  let _, h = fresh_heap () in
  let a = Heap.malloc h ~ty_id:7 ~site:3 ~callstack:12345 5 in
  match Heap.block_of_payload h a with
  | Some b ->
      Alcotest.(check int) "ty" 7 b.Heap.ty_id;
      Alcotest.(check int) "site" 3 b.Heap.site;
      Alcotest.(check int) "callstack" 12345 b.Heap.callstack;
      Alcotest.(check int) "words" 5 b.Heap.words;
      Alcotest.(check bool) "instrumented" true b.Heap.instrumented;
      Alcotest.(check bool) "startup flag during startup" true b.Heap.startup
  | None -> Alcotest.fail "block not found"

let test_uninstrumented_blocks_untagged () =
  let _, h = fresh_heap ~instrumented:false () in
  let a = Heap.malloc h ~ty_id:7 ~site:3 5 in
  match Heap.block_of_payload h a with
  | Some b ->
      Alcotest.(check bool) "not instrumented" false b.Heap.instrumented;
      Alcotest.(check int) "no type" 0 b.Heap.ty_id
  | None -> Alcotest.fail "block not found"

let test_free_and_reuse () =
  let _, h = fresh_heap () in
  Heap.end_startup h;
  let a = Heap.malloc h 16 in
  Heap.free h a;
  let b = Heap.malloc h 16 in
  Alcotest.(check int) "address reused after startup" a b

let test_free_foreign_rejected () =
  let _, h = fresh_heap () in
  Alcotest.(check bool) "foreign free raises" true
    (try
       Heap.free h 0x10;
       false
     with Invalid_argument _ -> true)

let test_double_free_rejected () =
  let _, h = fresh_heap () in
  Heap.end_startup h;
  let a = Heap.malloc h 4 in
  Heap.free h a;
  Alcotest.(check bool) "double free raises" true
    (try
       Heap.free h a;
       false
     with Invalid_argument _ -> true)

let test_out_of_memory () =
  let _, h = fresh_heap ~size:4096 () in
  Alcotest.check_raises "oom" Heap.Out_of_memory (fun () ->
      ignore (Heap.malloc h 4096))

let test_coalescing_allows_large_realloc () =
  let _, h = fresh_heap ~size:4096 () in
  Heap.end_startup h;
  (* fill the heap with small blocks, free all, then allocate one large *)
  let blocks = ref [] in
  (try
     while true do
       blocks := Heap.malloc h 16 :: !blocks
     done
   with Heap.Out_of_memory -> ());
  Alcotest.(check bool) "filled" true (List.length !blocks > 10);
  List.iter (Heap.free h) !blocks;
  let big = Heap.malloc h 400 in
  Alcotest.(check bool) "large alloc after coalescing" true (big > 0)

(* ------------------------------------------------------------------ *)
(* Startup separability (deferred frees) *)

let test_startup_free_deferred () =
  let _, h = fresh_heap () in
  let a = Heap.malloc h 8 in
  Heap.free h a;
  (* quarantined, not live, but the address cannot be reused yet *)
  Alcotest.(check bool) "not live after free" true (Heap.block_of_payload h a = None);
  let b = Heap.malloc h 8 in
  Alcotest.(check bool) "no startup-time address reuse" true (a <> b)

let test_end_startup_releases_quarantine () =
  let _, h = fresh_heap ~size:4096 () in
  let a = Heap.malloc h 100 in
  Heap.free h a;
  Heap.end_startup h;
  (* after startup the quarantined block is genuinely free again *)
  let c = Heap.malloc h 100 in
  Alcotest.(check int) "address available again" a c

let test_startup_flag_cleared_after_startup () =
  let _, h = fresh_heap () in
  Heap.end_startup h;
  let a = Heap.malloc h 4 in
  match Heap.block_of_payload h a with
  | Some b -> Alcotest.(check bool) "no startup flag" false b.Heap.startup
  | None -> Alcotest.fail "block not found"

(* ------------------------------------------------------------------ *)
(* Global reallocation (malloc_at) *)

let test_malloc_at_exact_address () =
  let sp, h = fresh_heap () in
  (* allocate in one heap, record the address, re-create in a fresh heap *)
  let a = Heap.malloc h 10 in
  let h2 = Heap.create sp ~instrumented:true ~name:"heap2" ~size:(64 * 1024) () in
  let a2_equiv = Heap.base h2 + (a - Heap.base h) in
  Heap.malloc_at h2 ~at:a2_equiv 10;
  match Heap.block_of_payload h2 a2_equiv with
  | Some b -> Alcotest.(check int) "payload at requested address" a2_equiv b.Heap.payload
  | None -> Alcotest.fail "block not recreated"

let test_malloc_at_splits_free_space () =
  let _, h = fresh_heap () in
  let at = Addr.add_words (Heap.base h) 100 in
  Heap.malloc_at h ~at 5;
  (* the allocator must still be able to allocate before and after *)
  let before = Heap.malloc h 20 in
  Alcotest.(check bool) "prefix usable" true (before < at);
  let blocks = ref 0 in
  Heap.iter_live h (fun _ -> incr blocks);
  Alcotest.(check int) "two live blocks" 2 !blocks

let test_malloc_at_overlap_rejected () =
  let _, h = fresh_heap () in
  let a = Heap.malloc h 10 in
  Alcotest.(check bool) "overlap rejected" true
    (try
       Heap.malloc_at h ~at:(Addr.add_words a 2) 4;
       false
     with Invalid_argument _ -> true)

let test_malloc_at_multiple_disjoint () =
  let _, h = fresh_heap () in
  let base = Heap.base h in
  let addrs = List.map (fun i -> Addr.add_words base (50 + (i * 20))) [ 0; 1; 2; 3 ] in
  List.iter (fun at -> Heap.malloc_at h ~at 8) addrs;
  List.iter
    (fun at ->
      match Heap.block_of_payload h at with
      | Some b -> Alcotest.(check int) "exact" at b.Heap.payload
      | None -> Alcotest.fail "missing block")
    addrs

(* ------------------------------------------------------------------ *)
(* Walking and containment *)

let test_iter_live_visits_all () =
  let _, h = fresh_heap () in
  let allocated = List.init 10 (fun i -> Heap.malloc h (i + 1)) in
  let seen = ref [] in
  Heap.iter_live h (fun b -> seen := b.Heap.payload :: !seen);
  Alcotest.(check (list int)) "all live blocks visited" (List.sort compare allocated)
    (List.sort compare !seen)

let test_block_containing_interior () =
  let _, h = fresh_heap () in
  let a = Heap.malloc h 10 in
  (match Heap.block_containing h (Addr.add_words a 5) with
  | Some b -> Alcotest.(check int) "interior resolves to payload" a b.Heap.payload
  | None -> Alcotest.fail "interior pointer unresolved");
  Alcotest.(check bool) "header addr is not payload" true
    (Heap.block_containing h (Addr.add_words a (-1)) = None)

let test_live_and_metadata_words () =
  let _, h = fresh_heap () in
  let _ = Heap.malloc h 10 in
  let _ = Heap.malloc h 20 in
  Alcotest.(check int) "live words" 30 (Heap.live_words h);
  Alcotest.(check int) "metadata words (2 x 3-word headers)" 6 (Heap.metadata_words h)

let test_stats_counters () =
  let _, h = fresh_heap () in
  Heap.end_startup h;
  let a = Heap.malloc h 4 in
  let _ = Heap.malloc h 4 in
  Heap.free h a;
  let s = Heap.stats h in
  Alcotest.(check int) "allocs" 2 s.Heap.allocs;
  Alcotest.(check int) "frees" 1 s.Heap.frees;
  Alcotest.(check int) "tag words" 4 s.Heap.tag_words

let prop_malloc_free_random =
  QCheck.Test.make ~name:"random malloc/free keeps heap consistent" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 40))
    (fun sizes ->
      let _, h = fresh_heap ~size:(256 * 1024) () in
      Heap.end_startup h;
      let live = ref [] in
      List.iteri
        (fun i w ->
          if i mod 3 = 2 && !live <> [] then begin
            (* free the oldest live block *)
            match List.rev !live with
            | oldest :: _ ->
                Heap.free h oldest;
                live := List.filter (( <> ) oldest) !live
            | [] -> ()
          end
          else live := Heap.malloc h w :: !live)
        sizes;
      (* every live payload must be found by iteration, counts match, and
         the in-band structure validates *)
      let seen = ref [] in
      Heap.iter_live h (fun b -> seen := b.Heap.payload :: !seen);
      List.sort compare !seen = List.sort compare !live && Heap.validate h = Ok ())

(* ------------------------------------------------------------------ *)
(* Pool allocator *)

let test_pool_bump_allocates_within_chunk () =
  let _, h = fresh_heap () in
  let p = Pool.create h ~name:"p" () in
  let a = Pool.palloc p 4 in
  let b = Pool.palloc p 4 in
  Alcotest.(check int) "bump allocation is contiguous" (Addr.add_words a 4) b

let test_pool_grabs_new_chunk () =
  let _, h = fresh_heap () in
  let p = Pool.create h ~chunk_words:16 ~name:"p" () in
  let _ = Pool.palloc p 10 in
  let _ = Pool.palloc p 10 in
  Alcotest.(check int) "two chunks" 2 (List.length (Pool.chunk_extents p))

let test_pool_uninstrumented_has_no_objects () =
  let _, h = fresh_heap () in
  let p = Pool.create h ~name:"p" () in
  let _ = Pool.palloc p 8 in
  let n = ref 0 in
  Pool.iter_objects p (fun _ -> incr n);
  Alcotest.(check int) "no tagged objects" 0 !n

let test_pool_instrumented_objects_tagged () =
  let _, h = fresh_heap () in
  let p = Pool.create h ~instrument:true ~name:"p" () in
  let a = Pool.palloc p ~ty_id:9 ~site:2 6 in
  let found = ref None in
  Pool.iter_objects p (fun b -> if b.Heap.payload = a then found := Some b);
  match !found with
  | Some b ->
      Alcotest.(check int) "ty" 9 b.Heap.ty_id;
      Alcotest.(check int) "words" 6 b.Heap.words
  | None -> Alcotest.fail "tagged pool object not found"

let test_pool_destroy_returns_chunks () =
  let _, h = fresh_heap () in
  Heap.end_startup h;
  let before = Heap.live_words h in
  let p = Pool.create h ~chunk_words:64 ~name:"p" () in
  let _ = Pool.palloc p 10 in
  Pool.destroy p;
  Alcotest.(check int) "heap back to baseline" before (Heap.live_words h);
  Alcotest.(check bool) "use after destroy raises" true
    (try
       ignore (Pool.palloc p 1);
       false
     with Invalid_argument _ -> true)

let test_pool_nested_destroyed_with_parent () =
  let _, h = fresh_heap () in
  Heap.end_startup h;
  let before = Heap.live_words h in
  let parent = Pool.create h ~chunk_words:64 ~name:"parent" () in
  let child = Pool.create h ~parent ~chunk_words:64 ~name:"child" () in
  let _ = Pool.palloc child 5 in
  Alcotest.(check int) "one child" 1 (List.length (Pool.children parent));
  Pool.destroy parent;
  Alcotest.(check int) "all chunks returned" before (Heap.live_words h)

let test_pool_reset_keeps_first_chunk () =
  let _, h = fresh_heap () in
  let p = Pool.create h ~chunk_words:16 ~name:"p" () in
  let _ = Pool.palloc p 10 in
  let _ = Pool.palloc p 10 in
  Pool.reset p;
  Alcotest.(check int) "one chunk after reset" 1 (List.length (Pool.chunk_extents p));
  let a = Pool.palloc p 4 in
  Alcotest.(check bool) "usable after reset" true (a > 0)

let test_pool_oversized_request () =
  let _, h = fresh_heap () in
  let p = Pool.create h ~chunk_words:16 ~name:"p" () in
  let a = Pool.palloc p 100 in
  Alcotest.(check bool) "oversized served from dedicated chunk" true (a > 0)

(* ------------------------------------------------------------------ *)
(* Slab allocator *)

let test_slab_alloc_free_cycle () =
  let _, h = fresh_heap () in
  let s = Slab.create h ~slot_words:4 ~slots_per_chunk:8 ~name:"s" in
  let a = Slab.alloc s in
  let b = Slab.alloc s in
  Alcotest.(check bool) "distinct slots" true (a <> b);
  Alcotest.(check int) "live" 2 (Slab.live_slots s);
  Slab.free s a;
  Alcotest.(check int) "live after free" 1 (Slab.live_slots s);
  let c = Slab.alloc s in
  Alcotest.(check int) "LIFO reuse" a c

let test_slab_grows () =
  let _, h = fresh_heap () in
  let s = Slab.create h ~slot_words:2 ~slots_per_chunk:4 ~name:"s" in
  let slots = List.init 10 (fun _ -> Slab.alloc s) in
  Alcotest.(check int) "all live" 10 (Slab.live_slots s);
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq compare slots) = 10);
  Alcotest.(check int) "grew to 3 chunks" 3 (List.length (Slab.chunk_extents s))

let test_slab_free_foreign_rejected () =
  let _, h = fresh_heap () in
  let s = Slab.create h ~slot_words:4 ~slots_per_chunk:4 ~name:"s" in
  Alcotest.(check bool) "foreign rejected" true
    (try
       Slab.free s 0x10;
       false
     with Invalid_argument _ -> true)

let test_slab_slot_base_interior () =
  let _, h = fresh_heap () in
  let s = Slab.create h ~slot_words:4 ~slots_per_chunk:4 ~name:"s" in
  let a = Slab.alloc s in
  Alcotest.(check (option int)) "interior resolves" (Some a)
    (Slab.slot_base s (Addr.add_words a 3))

let test_slab_freelist_leaves_stale_pointer () =
  (* The free-list link is written into the slot itself: after free, the
     slot's first word holds a heap address — the liveness-accuracy hazard. *)
  let sp, h = fresh_heap () in
  let s = Slab.create h ~slot_words:4 ~slots_per_chunk:4 ~name:"s" in
  let a = Slab.alloc s in
  let b = Slab.alloc s in
  Slab.free s a;
  Slab.free s b;
  Alcotest.(check int) "b links to a" a (Aspace.read_word sp b)

(* ------------------------------------------------------------------ *)
(* Sites *)

let test_sites_stable_ids () =
  let t = Sites.create () in
  let id1 = Sites.register t ~label:"server_init:conf" ~ty_id:4 in
  let id2 = Sites.register t ~label:"server_init:conf" ~ty_id:4 in
  Alcotest.(check int) "same label same id" id1 id2;
  let id3 = Sites.register t ~label:"handle_event:node" ~ty_id:5 in
  Alcotest.(check bool) "distinct labels distinct ids" true (id1 <> id3);
  Alcotest.(check int) "count" 2 (Sites.count t)

let test_sites_update_changes_type () =
  let t = Sites.create () in
  let id = Sites.register t ~label:"x" ~ty_id:1 in
  let id' = Sites.register t ~label:"x" ~ty_id:2 in
  Alcotest.(check int) "id stable across update" id id';
  Alcotest.(check int) "type updated" 2 (Sites.find t id).Sites.ty_id

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_alloc"
    [
      ( "heap",
        [
          Alcotest.test_case "malloc zeroed" `Quick test_malloc_returns_zeroed;
          Alcotest.test_case "distinct blocks" `Quick test_malloc_distinct_blocks;
          Alcotest.test_case "tags recorded" `Quick test_malloc_tags_recorded;
          Alcotest.test_case "uninstrumented untagged" `Quick test_uninstrumented_blocks_untagged;
          Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
          Alcotest.test_case "foreign free rejected" `Quick test_free_foreign_rejected;
          Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "coalescing" `Quick test_coalescing_allows_large_realloc;
          qt prop_malloc_free_random;
        ] );
      ( "separability",
        [
          Alcotest.test_case "startup frees deferred" `Quick test_startup_free_deferred;
          Alcotest.test_case "end_startup releases quarantine" `Quick
            test_end_startup_releases_quarantine;
          Alcotest.test_case "startup flag cleared" `Quick test_startup_flag_cleared_after_startup;
        ] );
      ( "global-reallocation",
        [
          Alcotest.test_case "exact address" `Quick test_malloc_at_exact_address;
          Alcotest.test_case "splits free space" `Quick test_malloc_at_splits_free_space;
          Alcotest.test_case "overlap rejected" `Quick test_malloc_at_overlap_rejected;
          Alcotest.test_case "multiple disjoint" `Quick test_malloc_at_multiple_disjoint;
        ] );
      ( "walking",
        [
          Alcotest.test_case "iter_live visits all" `Quick test_iter_live_visits_all;
          Alcotest.test_case "interior containment" `Quick test_block_containing_interior;
          Alcotest.test_case "live and metadata words" `Quick test_live_and_metadata_words;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "pool",
        [
          Alcotest.test_case "bump within chunk" `Quick test_pool_bump_allocates_within_chunk;
          Alcotest.test_case "grabs new chunk" `Quick test_pool_grabs_new_chunk;
          Alcotest.test_case "uninstrumented no objects" `Quick
            test_pool_uninstrumented_has_no_objects;
          Alcotest.test_case "instrumented objects tagged" `Quick
            test_pool_instrumented_objects_tagged;
          Alcotest.test_case "destroy returns chunks" `Quick test_pool_destroy_returns_chunks;
          Alcotest.test_case "nested destroy" `Quick test_pool_nested_destroyed_with_parent;
          Alcotest.test_case "reset keeps first chunk" `Quick test_pool_reset_keeps_first_chunk;
          Alcotest.test_case "oversized request" `Quick test_pool_oversized_request;
        ] );
      ( "slab",
        [
          Alcotest.test_case "alloc/free cycle" `Quick test_slab_alloc_free_cycle;
          Alcotest.test_case "grows" `Quick test_slab_grows;
          Alcotest.test_case "foreign free rejected" `Quick test_slab_free_foreign_rejected;
          Alcotest.test_case "interior slot base" `Quick test_slab_slot_base_interior;
          Alcotest.test_case "freelist stale pointer" `Quick
            test_slab_freelist_leaves_stale_pointer;
        ] );
      ( "sites",
        [
          Alcotest.test_case "stable ids" `Quick test_sites_stable_ids;
          Alcotest.test_case "update changes type" `Quick test_sites_update_changes_type;
        ] );
    ]
