(* Tests for Mcr_vmem: addresses, regions, address spaces, soft-dirty bits. *)

open Mcr_vmem

(* ------------------------------------------------------------------ *)
(* Addr *)

let test_addr_alignment () =
  Alcotest.(check bool) "0 aligned" true (Addr.is_aligned 0);
  Alcotest.(check bool) "8 aligned" true (Addr.is_aligned 8);
  Alcotest.(check bool) "4 unaligned" false (Addr.is_aligned 4);
  Alcotest.(check int) "align_up 1" 8 (Addr.align_up 1);
  Alcotest.(check int) "align_up 8" 8 (Addr.align_up 8)

let test_addr_pages () =
  Alcotest.(check int) "page_of 0" 0 (Addr.page_of 0);
  Alcotest.(check int) "page_of 4096" 1 (Addr.page_of 4096);
  Alcotest.(check int) "page_base" 4096 (Addr.page_base 4100);
  Alcotest.(check int) "page_offset" 4 (Addr.page_offset 4100);
  Alcotest.(check int) "word_index" 1 (Addr.word_index 4104)

let test_addr_arith () =
  Alcotest.(check int) "add" 108 (Addr.add 100 8);
  Alcotest.(check int) "add_words" 116 (Addr.add_words 100 2)

let prop_align_up_idempotent =
  QCheck.Test.make ~name:"align_up is idempotent and aligned" ~count:500
    QCheck.(int_range 0 1_000_000)
    (fun a ->
      let u = Addr.align_up a in
      Addr.is_aligned u && Addr.align_up u = u && u >= a && u - a < Addr.word_size)

(* ------------------------------------------------------------------ *)
(* Region *)

let region base size kind = { Region.base; size; kind; name = "r" }

let test_region_contains () =
  let r = region 4096 8192 Region.Heap in
  Alcotest.(check bool) "base in" true (Region.contains r 4096);
  Alcotest.(check bool) "mid in" true (Region.contains r 8000);
  Alcotest.(check bool) "limit out" false (Region.contains r (4096 + 8192));
  Alcotest.(check bool) "below out" false (Region.contains r 4095)

let test_region_overlaps () =
  let r = region 4096 4096 Region.Static in
  Alcotest.(check bool) "exact overlap" true (Region.overlaps r ~base:4096 ~size:4096);
  Alcotest.(check bool) "partial overlap" true (Region.overlaps r ~base:8000 ~size:4096);
  Alcotest.(check bool) "adjacent above" false (Region.overlaps r ~base:8192 ~size:4096);
  Alcotest.(check bool) "adjacent below" false (Region.overlaps r ~base:0 ~size:4096)

(* ------------------------------------------------------------------ *)
(* Aspace mapping *)

let test_map_read_write () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Aspace.write_word sp base 42;
  Alcotest.(check int) "read back" 42 (Aspace.read_word sp base);
  Alcotest.(check int) "zero init" 0 (Aspace.read_word sp (Addr.add_words base 1))

let test_map_fixed () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Fixed 0x10000) ~size:4096 Region.Mmap in
  Alcotest.(check int) "fixed placement honored" 0x10000 base

let test_map_fixed_overlap_rejected () =
  let sp = Aspace.create () in
  let _ = Aspace.map sp (Aspace.Fixed 0x10000) ~size:8192 Region.Mmap in
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Aspace.map: fixed mapping 0x11000+4096 overlaps") (fun () ->
      ignore (Aspace.map sp (Aspace.Fixed 0x11000) ~size:4096 Region.Mmap))

let test_map_near_no_overlap () =
  let sp = Aspace.create () in
  let a = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  let b = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Alcotest.(check bool) "distinct mappings" true (a <> b);
  Alcotest.(check int) "two regions" 2 (List.length (Aspace.regions sp))

let test_unmap () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Aspace.unmap sp base;
  Alcotest.(check int) "no regions" 0 (List.length (Aspace.regions sp));
  Alcotest.check_raises "fault after unmap" (Aspace.Fault base) (fun () ->
      ignore (Aspace.read_word sp base))

let test_fault_on_unmapped () =
  let sp = Aspace.create () in
  Alcotest.check_raises "unmapped faults" (Aspace.Fault 0x5000) (fun () ->
      ignore (Aspace.read_word sp 0x5000))

let test_fault_on_unaligned () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Alcotest.check_raises "unaligned faults" (Aspace.Fault (base + 3)) (fun () ->
      ignore (Aspace.read_word sp (base + 3)))

let test_null_never_mapped () =
  let sp = Aspace.create () in
  Alcotest.(check bool) "null not mapped" false (Aspace.is_mapped_word sp Addr.null)

let test_find_region () =
  let sp = Aspace.create () in
  let base = Aspace.map sp ~name:"globals" (Aspace.Near Region.Static) ~size:8192 Region.Static in
  (match Aspace.find_region sp (Addr.add base 4100) with
  | Some r ->
      Alcotest.(check string) "name" "globals" r.Region.name;
      Alcotest.(check bool) "kind" true (r.Region.kind = Region.Static)
  | None -> Alcotest.fail "region not found");
  Alcotest.(check bool) "outside" true (Aspace.find_region sp 0x100 = None)

let test_layout_bias_shifts_placement () =
  let a = Aspace.create () in
  let b = Aspace.create ~layout_bias:16 () in
  let ba = Aspace.map a (Aspace.Near Region.Static) ~size:4096 Region.Static in
  let bb = Aspace.map b (Aspace.Near Region.Static) ~size:4096 Region.Static in
  Alcotest.(check int) "bias in pages" (16 * Addr.page_size) (bb - ba)

(* ------------------------------------------------------------------ *)
(* Soft-dirty tracking *)

let test_soft_dirty_basics () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:(2 * 4096) Region.Heap in
  Aspace.epoch_reset sp ~name:"startup";
  Alcotest.(check (list int)) "clean after clear" [] (Aspace.epoch_dirty_pages sp ~name:"startup");
  Aspace.write_word sp (Addr.add base 4096) 1;
  Alcotest.(check (list int)) "second page dirty" [ base + 4096 ] (Aspace.epoch_dirty_pages sp ~name:"startup");
  Alcotest.(check bool) "first page clean" false (Aspace.epoch_page_dirty sp ~name:"startup" base)

let test_soft_dirty_untracked_write () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Aspace.epoch_reset sp ~name:"startup";
  Aspace.write_word_untracked sp base 7;
  Alcotest.(check int) "value written" 7 (Aspace.read_word sp base);
  Alcotest.(check (list int)) "still clean" [] (Aspace.epoch_dirty_pages sp ~name:"startup")

let test_soft_dirty_epoch () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Aspace.write_word sp base 1;
  Aspace.epoch_reset sp ~name:"startup";
  Alcotest.(check (list int)) "clear resets" [] (Aspace.epoch_dirty_pages sp ~name:"startup");
  Aspace.write_word sp base 2;
  Alcotest.(check (list int)) "re-dirty" [ Addr.page_base base ] (Aspace.epoch_dirty_pages sp ~name:"startup")

let test_reads_do_not_dirty () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Aspace.epoch_reset sp ~name:"startup";
  ignore (Aspace.read_word sp base);
  Alcotest.(check (list int)) "reads keep pages clean" [] (Aspace.epoch_dirty_pages sp ~name:"startup")

(* ------------------------------------------------------------------ *)
(* Clone and cross-space copy *)

let test_clone_deep () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Aspace.write_word sp base 99;
  let child = Aspace.clone sp in
  Alcotest.(check int) "child sees value" 99 (Aspace.read_word child base);
  Aspace.write_word child base 1;
  Alcotest.(check int) "parent unaffected" 99 (Aspace.read_word sp base);
  Aspace.write_word sp base 2;
  Alcotest.(check int) "child unaffected" 1 (Aspace.read_word child base)

let test_copy_words_across_spaces () =
  let a = Aspace.create () in
  let b = Aspace.create () in
  let src = Aspace.map a (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  let dst = Aspace.map b (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  for i = 0 to 9 do
    Aspace.write_word a (Addr.add_words src i) (i * 11)
  done;
  Aspace.epoch_reset b ~name:"startup";
  Aspace.copy_words ~src:a src ~dst:b dst ~words:10;
  for i = 0 to 9 do
    Alcotest.(check int) "copied" (i * 11) (Aspace.read_word b (Addr.add_words dst i))
  done;
  Alcotest.(check (list int)) "transfer writes untracked" [] (Aspace.epoch_dirty_pages b ~name:"startup")

(* ------------------------------------------------------------------ *)
(* Named epochs, frame sharing, copy-on-write *)

let test_named_epochs_independent () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:(2 * 4096) Region.Heap in
  Aspace.write_word sp base 1;
  Aspace.epoch_reset sp ~name:"a";
  Aspace.write_word sp (Addr.add base 4096) 2;
  Aspace.epoch_reset sp ~name:"b";
  (* page 2 written after a's mark, before b's *)
  Alcotest.(check bool) "dirty in a" true
    (Aspace.epoch_page_dirty sp ~name:"a" (Addr.add base 4096));
  Alcotest.(check bool) "clean in b" false
    (Aspace.epoch_page_dirty sp ~name:"b" (Addr.add base 4096));
  Alcotest.(check bool) "page 1 clean in both" false
    (Aspace.epoch_page_dirty sp ~name:"a" base);
  (* resetting a does not disturb b *)
  Aspace.write_word sp base 3;
  Aspace.epoch_reset sp ~name:"a";
  Alcotest.(check bool) "b saw the write" true (Aspace.epoch_page_dirty sp ~name:"b" base);
  Alcotest.(check bool) "a reset past it" false (Aspace.epoch_page_dirty sp ~name:"a" base);
  Alcotest.(check (list int)) "b's dirty page list" [ Addr.page_base base ]
    (Aspace.epoch_dirty_pages sp ~name:"b")

let test_epoch_never_created_sees_everything () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Aspace.write_word sp base 1;
  Alcotest.(check (option int)) "find on absent epoch" None
    (Aspace.epoch_find sp ~name:"ghost");
  Alcotest.(check bool) "absent epoch: everything dirty" true
    (Aspace.epoch_page_dirty sp ~name:"ghost" base);
  Aspace.epoch_reset sp ~name:"ghost";
  Alcotest.(check bool) "created by reset" true (Aspace.epoch_find sp ~name:"ghost" <> None);
  Aspace.epoch_remove sp ~name:"ghost";
  Alcotest.(check (option int)) "removed" None (Aspace.epoch_find sp ~name:"ghost")

let test_legacy_shims_are_startup_epoch () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
  Aspace.epoch_reset sp ~name:"startup";
  Aspace.write_word sp base 1;
  Alcotest.(check bool) "shim sees startup epoch" true
    (Aspace.epoch_page_dirty sp ~name:"startup" base);
  Aspace.epoch_reset sp ~name:"startup";
  Alcotest.(check bool) "epoch read agrees" false (Aspace.epoch_page_dirty sp ~name:"startup" base)

let share_setup () =
  let a = Aspace.create () in
  let b = Aspace.create () in
  let src = Aspace.map a (Aspace.Fixed 4096) ~size:4096 Region.Heap in
  let dst = Aspace.map b (Aspace.Fixed 8192) ~size:4096 Region.Heap in
  for i = 0 to Addr.words_per_page - 1 do
    Aspace.write_word a (Addr.add_words src i) (i * 7);
    Aspace.write_word b (Addr.add_words dst i) (i * 7)
  done;
  (a, b, src, dst)

let test_share_page_and_counts () =
  let a, b, src, dst = share_setup () in
  Alcotest.(check int) "no sharing before" 0 (Aspace.shared_frame_count b);
  Aspace.share_page ~src:a src ~dst:b dst;
  Alcotest.(check int) "dst shares" 1 (Aspace.shared_frame_count b);
  Alcotest.(check int) "src shares" 1 (Aspace.shared_frame_count a);
  Alcotest.(check bool) "dst marked inherited" true (Aspace.page_inherited b dst);
  for i = 0 to Addr.words_per_page - 1 do
    Alcotest.(check int) "content preserved" (i * 7)
      (Aspace.read_word b (Addr.add_words dst i))
  done

let test_share_page_cow_isolates () =
  let a, b, src, dst = share_setup () in
  Aspace.share_page ~src:a src ~dst:b dst;
  (* write through the source: the destination must not see it *)
  Aspace.write_word a src 999;
  Alcotest.(check int) "dst unaffected by src write" 0 (Aspace.read_word b dst);
  Alcotest.(check int) "src sees own write" 999 (Aspace.read_word a src);
  Alcotest.(check int) "sharing broken by COW" 0 (Aspace.shared_frame_count a);
  (* share again, write through the destination this time, untracked *)
  Aspace.share_page ~src:a src ~dst:b dst;
  Aspace.write_word_untracked b (Addr.add_words dst 1) 555;
  Alcotest.(check int) "src unaffected by dst write" 999 (Aspace.read_word a src);
  Alcotest.(check int) "dst sees own write" 555 (Aspace.read_word b (Addr.add_words dst 1))

let test_detach_shared () =
  let a, b, src, dst = share_setup () in
  Aspace.share_page ~src:a src ~dst:b dst;
  Alcotest.(check int) "detach count" 1 (Aspace.detach_shared b);
  Alcotest.(check int) "b private again" 0 (Aspace.shared_frame_count b);
  Alcotest.(check int) "a private again" 0 (Aspace.shared_frame_count a);
  Alcotest.(check int) "content survives detach" (7 * 3)
    (Aspace.read_word b (Addr.add_words dst 3));
  Alcotest.(check int) "detach is idempotent" 0 (Aspace.detach_shared b)

let test_share_page_rejects_misaligned () =
  let a, b, src, dst = share_setup () in
  Alcotest.check_raises "unaligned src"
    (Invalid_argument "Aspace.share_page: addresses must be page-aligned")
    (fun () -> Aspace.share_page ~src:a (Addr.add src 8) ~dst:b dst)

let test_unmap_shared_releases_ref () =
  let a, b, src, dst = share_setup () in
  Aspace.share_page ~src:a src ~dst:b dst;
  Aspace.unmap b dst;
  Alcotest.(check int) "src sole owner after unmap" 0 (Aspace.shared_frame_count a)

let test_mark_inherited_survives_tracking () =
  let sp = Aspace.create () in
  let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:(2 * 4096) Region.Heap in
  Aspace.epoch_reset sp ~name:"startup";
  Aspace.mark_inherited sp (Addr.add base 4096) ~words:1;
  Alcotest.(check bool) "tainted" true (Aspace.page_inherited sp (Addr.add base 4096));
  Alcotest.(check bool) "first page untainted" false (Aspace.page_inherited sp base);
  Alcotest.(check (list int)) "taint is not dirtiness" [] (Aspace.epoch_dirty_pages sp ~name:"startup");
  (* the taint survives epoch resets — it is not epoch state *)
  Aspace.epoch_reset sp ~name:"startup";
  Alcotest.(check bool) "survives reset" true (Aspace.page_inherited sp (Addr.add base 4096))

let test_resident_bytes () =
  let sp = Aspace.create () in
  ignore (Aspace.map sp (Aspace.Near Region.Heap) ~size:10000 Region.Heap);
  (* 10000 rounds to 3 pages *)
  Alcotest.(check int) "rss" (3 * 4096) (Aspace.resident_bytes sp)

let prop_write_read_roundtrip =
  QCheck.Test.make ~name:"write/read word roundtrip" ~count:300
    QCheck.(pair (int_range 0 511) int)
    (fun (word_off, v) ->
      let sp = Aspace.create () in
      let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:4096 Region.Heap in
      let a = Addr.add_words base word_off in
      Aspace.write_word sp a v;
      Aspace.read_word sp a = v)

let prop_dirty_iff_written =
  QCheck.Test.make ~name:"a page is dirty iff some word on it was written" ~count:100
    QCheck.(small_list (int_range 0 (4 * 512 - 1)))
    (fun offsets ->
      let sp = Aspace.create () in
      let base = Aspace.map sp (Aspace.Near Region.Heap) ~size:(4 * 4096) Region.Heap in
      Aspace.epoch_reset sp ~name:"startup";
      List.iter (fun off -> Aspace.write_word sp (Addr.add_words base off) 1) offsets;
      let expected =
        List.sort_uniq compare
          (List.map (fun off -> Addr.page_base (Addr.add_words base off)) offsets)
      in
      Aspace.epoch_dirty_pages sp ~name:"startup" = expected)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_vmem"
    [
      ( "addr",
        [
          Alcotest.test_case "alignment" `Quick test_addr_alignment;
          Alcotest.test_case "pages" `Quick test_addr_pages;
          Alcotest.test_case "arithmetic" `Quick test_addr_arith;
          qt prop_align_up_idempotent;
        ] );
      ( "region",
        [
          Alcotest.test_case "contains" `Quick test_region_contains;
          Alcotest.test_case "overlaps" `Quick test_region_overlaps;
        ] );
      ( "aspace-map",
        [
          Alcotest.test_case "map read write" `Quick test_map_read_write;
          Alcotest.test_case "fixed placement" `Quick test_map_fixed;
          Alcotest.test_case "fixed overlap rejected" `Quick test_map_fixed_overlap_rejected;
          Alcotest.test_case "near placement avoids overlap" `Quick test_map_near_no_overlap;
          Alcotest.test_case "unmap" `Quick test_unmap;
          Alcotest.test_case "fault on unmapped" `Quick test_fault_on_unmapped;
          Alcotest.test_case "fault on unaligned" `Quick test_fault_on_unaligned;
          Alcotest.test_case "null never mapped" `Quick test_null_never_mapped;
          Alcotest.test_case "find region" `Quick test_find_region;
          Alcotest.test_case "layout bias" `Quick test_layout_bias_shifts_placement;
          qt prop_write_read_roundtrip;
        ] );
      ( "soft-dirty",
        [
          Alcotest.test_case "basics" `Quick test_soft_dirty_basics;
          Alcotest.test_case "untracked writes" `Quick test_soft_dirty_untracked_write;
          Alcotest.test_case "epochs" `Quick test_soft_dirty_epoch;
          Alcotest.test_case "reads do not dirty" `Quick test_reads_do_not_dirty;
          qt prop_dirty_iff_written;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "named epochs independent" `Quick test_named_epochs_independent;
          Alcotest.test_case "absent epoch semantics" `Quick
            test_epoch_never_created_sees_everything;
          Alcotest.test_case "legacy shims are the startup epoch" `Quick
            test_legacy_shims_are_startup_epoch;
        ] );
      ( "share-cow",
        [
          Alcotest.test_case "share_page counts and content" `Quick test_share_page_and_counts;
          Alcotest.test_case "COW isolates both sides" `Quick test_share_page_cow_isolates;
          Alcotest.test_case "detach_shared" `Quick test_detach_shared;
          Alcotest.test_case "misaligned share rejected" `Quick
            test_share_page_rejects_misaligned;
          Alcotest.test_case "unmap releases shared ref" `Quick test_unmap_shared_releases_ref;
          Alcotest.test_case "inherited taint" `Quick test_mark_inherited_survives_tracking;
        ] );
      ( "clone-copy",
        [
          Alcotest.test_case "clone is deep" `Quick test_clone_deep;
          Alcotest.test_case "copy words across spaces" `Quick test_copy_words_across_spaces;
          Alcotest.test_case "resident bytes" `Quick test_resident_bytes;
        ] );
    ]
