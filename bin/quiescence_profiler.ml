(* quiescence-profiler: run a server under the execution-stalling test
   workload and report its thread classes, long-lived loops and suggested
   quiescent points — the build-time profiling step of Figure 1.

     dune exec bin/quiescence_profiler.exe -- --server vsftpd *)

module K = Mcr_simos.Kernel
module P = Mcr_program.Progdef
module Profiler = Mcr_quiesce.Profiler
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders

let run name =
  let server =
    match name with
    | "nginx" -> Testbed.Nginx
    | "httpd" -> Testbed.Httpd
    | "vsftpd" -> Testbed.Vsftpd
    | "sshd" -> Testbed.Sshd
    | s ->
        Printf.eprintf "unknown server %s\n" s;
        exit 1
  in
  let kernel = K.create () in
  let profiler = Profiler.create kernel in
  Profiler.set_filter profiler (fun th ->
      K.thread_name th <> "mcr-ctl" && P.image_of_proc (K.thread_proc th) <> None);
  Profiler.attach profiler;
  Printf.printf "profiling %s under the execution-stalling workload...\n%!"
    (Testbed.name server);
  let _m = Testbed.launch ~instr:Mcr_program.Instr.baseline ~profiler kernel server in
  let holders = Testbed.profiling_workload kernel server in
  Profiler.detach profiler;
  let report = Profiler.report profiler in
  Holders.close_all holders;
  Format.printf "%a@." Profiler.pp_report report;
  print_endline "suggested quiescent points for instrumentation:";
  List.iter
    (fun (site, call) -> Printf.printf "  (%S, %S)\n" site call)
    (Profiler.suggested_qpoints report)

open Cmdliner

let server =
  Arg.(value & opt string "nginx" & info [ "server"; "s" ] ~doc:"nginx|httpd|vsftpd|sshd")

let cmd =
  Cmd.v
    (Cmd.info "quiescence-profiler" ~doc:"Suggest per-thread quiescent points")
    Term.(const run $ server)

let () = exit (Cmd.eval cmd)
