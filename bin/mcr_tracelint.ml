(* mcr-tracelint: structural lint for the tracing instrumentation. Runs
   traced updates across the four servers — plus a faulted rollback and a
   pre-copy update — and fails (exit 1) if any trace has unbalanced
   Trace.span begin/end pairs, via the same Export.check_balanced the test
   suite uses. Wired into `dune build @lint` and CI, so an instrumentation
   change that forgets a span_end breaks the build, not a later debugging
   session. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Testbed = Mcr_workloads.Testbed
module Trace = Mcr_obs.Trace
module Export = Mcr_obs.Export
module Fault = Mcr_fault.Fault

let failures = ref 0

let check label trace =
  match Export.check_balanced trace with
  | Ok () -> Printf.printf "ok   %-28s %d event(s) balanced\n%!" label (Trace.emitted trace)
  | Error errors ->
      incr failures;
      Printf.printf "FAIL %-28s %d violation(s)\n" label (List.length errors);
      List.iter (fun e -> Printf.printf "       %s\n" e) errors

let scenario label ?policy ?fault server =
  let kernel = K.create () in
  let trace = Trace.create ~clock:(fun () -> K.clock_ns kernel) () in
  let m = Testbed.launch ~trace kernel server in
  (match policy with Some p -> Manager.set_policy m p | None -> ());
  ignore (Testbed.benchmark kernel server ~scale:1000 ());
  let _, report = Manager.update m ?fault (Testbed.final_version server) in
  Printf.printf "     %-28s update %s\n%!" label
    (if report.Manager.success then "committed" else "rolled back");
  check label trace

let () =
  List.iter
    (fun server -> scenario (Testbed.name server) server)
    [ Testbed.Nginx; Testbed.Httpd; Testbed.Vsftpd; Testbed.Sshd ];
  scenario "httpd+transfer-conflict" ~fault:(Fault.script [ Fault.Transfer_conflict ])
    Testbed.Httpd;
  scenario "nginx+precopy" ~policy:(Policy.with_precopy true Policy.default) Testbed.Nginx;
  if !failures > 0 then begin
    Printf.printf "tracelint: %d unbalanced trace(s)\n" !failures;
    exit 1
  end;
  print_endline "tracelint: all traces balanced"
