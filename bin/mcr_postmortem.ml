(* mcr-postmortem: render flight-record JSON (the artifact the smoke
   benches write, or the payload of `mcr-ctl EXPLAIN`) as a human-readable
   post-mortem — a downtime-attribution waterfall plus, for rollbacks, the
   conflict narrative naming the object and stage that killed the update.
   Fleet rollout summaries (the fleet bench artifact, or the payload of
   `FLEET EXPLAIN`) render as a wave timeline with per-instance verdicts
   and, when the rollout halted, the blocking canary's full narrative.

   With --replay the argument is a persistent checkpoint image
   [.mcrimg] instead: the image is restored into a fresh kernel, the
   recorded update re-run offline, and the verdict compared against the
   embedded flight record. Exit 0 when reproduced, 3 when the re-run
   contradicts the record.

   With --requests the open-loop load driver's per-request stamps are
   correlated with each record: a client-impact section names the
   waterfall segment (quiesce/copy/relink/...) each stalled request was
   held in.

     dune exec bin/mcr_postmortem.exe -- bench-out/flight_nginx.json
     dune exec bin/mcr_postmortem.exe -- bench-out/fleet_nginx_n8_fault_halt.json
     dune exec bin/mcr_postmortem.exe -- --replay images/nginx-update-1.mcrimg
     dune exec bin/mcr_postmortem.exe -- -    # read stdin *)

module Flight = Mcr_obs.Flight
module Client_impact = Mcr_obs.Client_impact
module Fleet_flight = Mcr_obs.Fleet_flight
module Json = Mcr_obs.Json
module Postmortem = Mcr_obs.Postmortem
module Image = Mcr_image.Image
module Timetravel = Mcr_workloads.Timetravel

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let run_replay path =
  match Image.read ~path with
  | Error e ->
      Printf.eprintf "mcr-postmortem: %s: %s\n" path (Image.error_to_string e);
      exit 2
  | Ok img -> (
      Printf.printf "replaying %s: %s %s -> %s\n%!" path (Image.prog img)
        (Image.version_tag img)
        (Option.value (Image.target_tag img) ~default:"?");
      (* the embedded flight record, rendered first: the claim under test *)
      (match Image.flight_json img with
      | Some json -> (
          match Flight.of_json json with
          | Ok r -> print_string (Postmortem.render r)
          | Error _ -> ())
      | None -> ());
      match Timetravel.replay img with
      | Error e ->
          Printf.eprintf "mcr-postmortem: %s: %s\n" path e;
          exit 2
      | Ok v ->
          Format.printf "%a@." Timetravel.pp_verdict v;
          if not v.Timetravel.v_reproduced then exit 3)

let read_file path =
  let ic = open_in_bin path in
  let data = read_all ic in
  close_in ic;
  data

(* --requests: per-request stamps from the open-loop load driver
   (Loadgen.requests_json). Render the client-impact section after each
   flight record — which requests the window stalled, in which segment. *)
let load_requests = function
  | None -> None
  | Some path -> (
      match Client_impact.reqs_of_json (read_file path) with
      | Ok (server, reqs) -> Some (server, reqs)
      | Error e ->
          Printf.eprintf "mcr-postmortem: %s: %s\n" path e;
          exit 2)

let run replay requests path =
  if replay then run_replay path
  else
  let data = if path = "-" then read_all stdin else read_file path in
  (* A fleet rollout summary is a single object with a "waves" member;
     everything else is a flight record (or a list of them). *)
  let is_fleet =
    match Json.parse data with
    | Ok j -> Json.member "waves" j <> None
    | Error _ -> false
  in
  if is_fleet then
    match Fleet_flight.of_json data with
    | Error e ->
        Printf.eprintf "mcr-postmortem: %s: %s\n" path e;
        exit 2
    | Ok summary -> print_string (Postmortem.render_fleet summary)
  else
    match Flight.of_json_list data with
    | Error e ->
        Printf.eprintf "mcr-postmortem: %s: %s\n" path e;
        exit 2
    | Ok records -> (
        match load_requests requests with
        | None -> print_string (Postmortem.render_list records)
        | Some (server, reqs) ->
            List.iter
              (fun r ->
                print_string (Postmortem.render r);
                Printf.printf "\nclient requests: %d against %s\n" (List.length reqs) server;
                print_string (Postmortem.render_client_impact r reqs);
                print_newline ())
              records)

open Cmdliner

let file =
  Arg.(
    value
    & pos 0 string "-"
    & info [] ~docv:"FILE"
        ~doc:
          "Flight-record JSON file ($(b,-) for stdin), or a checkpoint image with \
           $(b,--replay).")

let replay =
  Arg.(
    value & flag
    & info [ "replay" ]
        ~doc:
          "Treat $(docv) as a persistent checkpoint image: restore it into a fresh \
           kernel, re-run the recorded update offline and check the verdict against \
           the embedded flight record (exit 3 if not reproduced).")

let requests_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "requests" ] ~docv:"REQS"
        ~doc:
          "Per-request latency stamps from the open-loop load driver (the \
           $(b,latency_requests_*.json) artifact of $(b,bench latency)); adds a \
           client-impact section correlating stalled requests to downtime-waterfall \
           segments.")

let cmd =
  Cmd.v
    (Cmd.info "mcr-postmortem"
       ~doc:"Render MCR update flight records as a post-mortem report")
    Term.(const run $ replay $ requests_arg $ file)

let () = exit (Cmd.eval cmd)
