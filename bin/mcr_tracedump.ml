(* mcr-tracedump: run a full live update with the observability sink
   enabled and export the event trace — Chrome trace-event JSON (load it
   in Perfetto / chrome://tracing) and/or a plain-text timeline — plus the
   manager's metrics snapshot.

     dune exec bin/mcr_tracedump.exe -- --server nginx --out nginx.trace.json
     dune exec bin/mcr_tracedump.exe -- --server httpd --format timeline *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Ctl = Mcr_core.Ctl
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders
module Loadgen = Mcr_workloads.Loadgen
module Trace = Mcr_obs.Trace
module Metrics = Mcr_obs.Metrics
module Export = Mcr_obs.Export

let server_of_string = function
  | "nginx" -> Ok Testbed.Nginx
  | "httpd" -> Ok Testbed.Httpd
  | "vsftpd" -> Ok Testbed.Vsftpd
  | "sshd" -> Ok Testbed.Sshd
  | s -> Error (`Msg ("unknown server " ^ s ^ " (nginx|httpd|vsftpd|sshd)"))

type format = Chrome | Timeline | Both

let format_of_string = function
  | "chrome" -> Ok Chrome
  | "timeline" -> Ok Timeline
  | "both" -> Ok Both
  | s -> Error (`Msg ("unknown format " ^ s ^ " (chrome|timeline|both)"))

let write_file path data =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length data)

let run server requests conns openloop out format =
  let kernel = K.create () in
  let trace = Trace.create ~clock:(fun () -> K.clock_ns kernel) () in
  Printf.printf "launching %s with tracing enabled...\n%!" (Testbed.name server);
  let m = Testbed.launch ~trace kernel server in
  ignore (Testbed.benchmark kernel server ~scale:(max 1 (100_000 / requests)) ());
  (* Open-loop clients share the update pipeline's trace sink, so each
     request.* span lands on the same timeline as the update.* spans it
     overlaps — a stalled request visibly brackets the window segment
     that held it. Same Chrome trace-event schema, one more category. *)
  let lg =
    if openloop > 0 then
      Some (Loadgen.start kernel ~server ~trace ~rate:20_000 ~requests:openloop ())
    else None
  in
  let holders =
    if conns > 0 then Some (Testbed.open_holders kernel server ~n:conns) else None
  in
  Printf.printf "updating %s -> %s...\n%!"
    (Manager.version m).Mcr_program.Progdef.version_tag
    (Testbed.final_version server).Mcr_program.Progdef.version_tag;
  let reply = ref None in
  Ctl.exec kernel ~path:(Manager.ctl_path m) Ctl.Update
    ~on_result:(fun r ->
      reply := Some (match r with Ok "" -> "OK" | Ok p -> p | Error e -> Format.asprintf "%a" Ctl.pp_error e))
    ();
  ignore
    (K.run_until kernel
       ~max_ns:(K.clock_ns kernel + 10_000_000_000)
       (fun () -> Manager.update_requested m));
  let m2, report = Manager.update m (Testbed.final_version server) in
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 10_000_000_000) (fun () -> !reply <> None));
  (match holders with
  | Some h ->
      Holders.close_all h;
      ignore
        (K.run_until kernel
           ~max_ns:(K.clock_ns kernel + 60_000_000_000)
           (fun () -> Holders.all_done h))
  | None -> ());
  Option.iter (fun lg -> Loadgen.drive lg) lg;
  Printf.printf "update %s; %d events traced (%d dropped)\n"
    (if report.Manager.success then "committed" else "rolled back")
    (Trace.emitted trace) (Trace.dropped trace);
  let base =
    match out with
    | Some p -> p
    | None ->
        let slug =
          match server with
          | Testbed.Nginx -> "nginx"
          | Testbed.Httpd -> "httpd"
          | Testbed.Vsftpd -> "vsftpd"
          | Testbed.Sshd -> "sshd"
        in
        slug ^ ".trace"
  in
  (match format with
  | Chrome -> write_file (base ^ ".json") (Export.chrome_json trace)
  | Timeline -> write_file (base ^ ".txt") (Export.timeline trace)
  | Both ->
      write_file (base ^ ".json") (Export.chrome_json trace);
      write_file (base ^ ".txt") (Export.timeline trace));
  print_string (Metrics.render (Manager.metrics_snapshot m2));
  if not report.Manager.success then exit 1

open Cmdliner

let server_conv =
  Arg.conv ~docv:"SERVER" (server_of_string, fun ppf s -> Fmt.string ppf (Testbed.name s))

let format_conv =
  Arg.conv ~docv:"FORMAT"
    ( format_of_string,
      fun ppf f ->
        Fmt.string ppf (match f with Chrome -> "chrome" | Timeline -> "timeline" | Both -> "both")
    )

let server =
  Arg.(value & opt server_conv Testbed.Nginx & info [ "server"; "s" ] ~doc:"Server to run.")

let requests =
  Arg.(value & opt int 200 & info [ "requests"; "n" ] ~doc:"Benchmark requests before update.")

let conns =
  Arg.(value & opt int 4 & info [ "conns"; "c" ] ~doc:"Long-lived connections held across the update.")

let openloop =
  Arg.(
    value & opt int 0
    & info [ "open-loop" ]
        ~doc:
          "Additionally run this many open-loop Poisson clients through the update; \
           their $(b,request.*) spans share the trace timeline with the update \
           pipeline's spans.")

let out =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc:"Output path base (extension added per format).")

let format =
  Arg.(value & opt format_conv Chrome & info [ "format"; "f" ] ~doc:"Export format: chrome, timeline, or both.")

let cmd =
  Cmd.v
    (Cmd.info "mcr-tracedump" ~doc:"Export an MCR live-update event trace")
    Term.(const run $ server $ requests $ conns $ openloop $ out $ format)

let () = exit (Cmd.eval cmd)
