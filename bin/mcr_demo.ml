(* mcr-demo: run a simulated MCR-enabled server, put it under load, and
   drive a live update through the mcr-ctl control socket — the end-to-end
   workflow of Figure 1 in one command. With --fleet N the same server
   runs as N instances behind the simulated balancer and the update
   becomes a canary-gated rolling rollout driven through FLEET ROLLOUT.

     dune exec bin/mcr_demo.exe -- --server nginx --requests 200 --conns 10
     dune exec bin/mcr_demo.exe -- --server httpd --fail  # rollback demo
     dune exec bin/mcr_demo.exe -- --fault-seed 7 --quiesce-deadline-ms 500
     dune exec bin/mcr_demo.exe -- --fleet 16 --canary 2 --wave 4
     dune exec bin/mcr_demo.exe -- --fleet 8 --fault-seed 3 --halt rollback_updated *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Ctl = Mcr_core.Ctl
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders
module Fleet = Mcr_fleet.Fleet
module Fleet_policy = Mcr_fleet.Fleet_policy
module Rollout = Mcr_fleet.Rollout

let server_of_string = function
  | "nginx" -> Ok Testbed.Nginx
  | "httpd" -> Ok Testbed.Httpd
  | "vsftpd" -> Ok Testbed.Vsftpd
  | "sshd" -> Ok Testbed.Sshd
  | s -> Error (`Msg ("unknown server " ^ s ^ " (nginx|httpd|vsftpd|sshd)"))

(* The fleet path: N instances, one FLEET ROLLOUT over the fleet socket,
   then the rollout post-mortem. A seeded fault arms the canary
   (instance 0), so the demo shows the halt gate and — under
   rollback_updated — the fleet-wide revert. *)
let run_fleet server n canary wave max_unavailable halt fault_seed =
  let pol =
    Fleet_policy.default
    |> Fleet_policy.with_canary canary
    |> Fleet_policy.with_wave wave
    |> Fleet_policy.with_max_unavailable max_unavailable
    |> Fleet_policy.with_halt halt
  in
  let pol =
    match fault_seed with
    | Some seed -> Fleet_policy.with_fault ~seed:(Some seed) ~instances:[ 0 ] pol
    | None -> pol
  in
  Printf.printf "launching a fleet of %d %s instance(s) behind the balancer...\n%!" n
    (Testbed.name server);
  let fleet = Fleet.of_testbed ~policy:pol server ~n in
  Printf.printf "  fleet control socket %s\n" (Fleet.ctl_path fleet);
  print_string (Fleet.status_text fleet);
  Printf.printf "requesting FLEET ROLLOUT over the control socket...\n%!";
  match Rollout.request_over_ctl fleet with
  | Error e ->
      Printf.printf "  rollout failed: %s\n" e;
      exit 1
  | Ok summary ->
      print_newline ();
      print_string (Mcr_obs.Postmortem.render_fleet summary);
      print_newline ();
      print_string (Fleet.status_text fleet);
      (* an unprovoked halt is a real failure; a seeded one is the demo *)
      if summary.Mcr_obs.Fleet_flight.fs_halted && fault_seed = None then exit 1

let run_single server requests conns fail_update fault_seed quiesce_deadline_ms
    update_deadline_ms precopy transfer_workers =
  let kernel = K.create () in
  Printf.printf "launching %s (MCR-enabled, startup log recording)...\n%!"
    (Testbed.name server);
  let m = Testbed.launch kernel server in
  Printf.printf "  %d process(es) up; control socket %s\n"
    (List.length (Manager.images m)) (Manager.ctl_path m);
  Printf.printf "running workload (%d requests)...\n%!" requests;
  let r = Testbed.benchmark kernel server ~scale:(max 1 (100_000 / requests)) () in
  Format.printf "  %a@." Mcr_workloads.Bench_result.pp r;
  let holders =
    if conns > 0 then begin
      Printf.printf "opening %d long-lived connections...\n%!" conns;
      Some (Testbed.open_holders kernel server ~n:conns)
    end
    else None
  in
  let target =
    if fail_update && server = Testbed.Httpd then Mcr_servers.Httpd_sim.unprepared ()
    else Testbed.final_version server
  in
  Printf.printf "signalling live update via mcr-ctl (to %s %s)...\n%!"
    target.Mcr_program.Progdef.prog target.Mcr_program.Progdef.version_tag;
  let reply = ref None in
  Ctl.exec kernel ~path:(Manager.ctl_path m) Ctl.Update
    ~on_result:(fun r ->
      reply := Some (match r with Ok "" -> "OK" | Ok p -> p | Error e -> Format.asprintf "%a" Ctl.pp_error e))
    ();
  ignore
    (K.run_until kernel
       ~max_ns:(K.clock_ns kernel + 10_000_000_000)
       (fun () -> Manager.update_requested m));
  let fault =
    Option.map
      (fun seed ->
        let f = Mcr_fault.Fault.of_seed seed in
        List.iter
          (fun p -> Format.printf "  fault armed (seed %d): %a@." seed Mcr_fault.Fault.pp_point p)
          (Mcr_fault.Fault.armed f);
        f)
      fault_seed
  in
  let ns_of_ms = Option.map (fun ms -> ms * 1_000_000) in
  let policy =
    Mcr_core.Policy.default
    |> Mcr_core.Policy.with_deadlines
         ~quiesce_ns:(ns_of_ms quiesce_deadline_ms)
         ~update_ns:(ns_of_ms update_deadline_ms)
    |> Mcr_core.Policy.with_precopy precopy
    |> Mcr_core.Policy.with_transfer_workers (max 1 transfer_workers)
  in
  let m2, report = Manager.update m ~policy ?fault target in
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 10_000_000_000) (fun () -> !reply <> None));
  Printf.printf "  mcr-ctl reply: %s\n" (Option.value !reply ~default:"(none)");
  let ms ns = float_of_int ns /. 1e6 in
  Printf.printf
    "  quiesce %.1f ms | control migration %.1f ms | state transfer %.1f ms | total %.1f ms\n"
    (ms report.Manager.quiesce_ns)
    (ms report.Manager.control_migration_ns)
    (ms report.Manager.state_transfer_ns)
    (ms report.Manager.total_ns);
  Printf.printf "  downtime %.1f ms (%d pre-copy round(s), %d bytes staged)\n"
    (ms report.Manager.downtime_ns)
    report.Manager.precopy_rounds report.Manager.precopy_bytes;
  Printf.printf "  replayed %d startup calls, %d live; %s\n" report.Manager.replayed_calls
    report.Manager.live_calls
    (if report.Manager.success then "COMMITTED" else "ROLLED BACK");
  (match report.Manager.failure with
  | Some f -> Printf.printf "  rollback cause: %s\n" (Mcr_error.to_string f)
  | None -> ());
  List.iter
    (fun c -> Format.printf "  replay conflict: %a@." Mcr_replay.Replayer.pp_conflict c)
    report.Manager.replay_conflicts;
  List.iter
    (fun c -> Format.printf "  tracing conflict: %a@." Mcr_trace.Transfer.pp_conflict c)
    report.Manager.transfer_conflicts;
  Printf.printf "running post-update workload (version now %s)...\n%!"
    (Manager.version m2).Mcr_program.Progdef.version_tag;
  let r2 = Testbed.benchmark kernel server ~scale:(max 1 (100_000 / requests)) () in
  Format.printf "  %a@." Mcr_workloads.Bench_result.pp r2;
  (match holders with
  | Some h ->
      Holders.close_all h;
      ignore
        (K.run_until kernel
           ~max_ns:(K.clock_ns kernel + 60_000_000_000)
           (fun () -> Holders.all_done h));
      Printf.printf "long-lived connections drained cleanly on the %s\n"
        (if report.Manager.success then "new version" else "old version")
  | None -> ());
  Printf.printf "done (virtual time %.1f ms)\n" (ms (K.clock_ns kernel));
  if r2.Mcr_workloads.Bench_result.errors > 0 then exit 1

let run server requests conns fail_update fault_seed quiesce_deadline_ms update_deadline_ms
    precopy transfer_workers fleet canary wave max_unavailable halt verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  if fleet > 0 then run_fleet server fleet canary wave max_unavailable halt fault_seed
  else
    run_single server requests conns fail_update fault_seed quiesce_deadline_ms
      update_deadline_ms precopy transfer_workers

open Cmdliner

let server_conv =
  Arg.conv ~docv:"SERVER" (server_of_string, fun ppf s -> Fmt.string ppf (Testbed.name s))

let server =
  Arg.(value & opt server_conv Testbed.Nginx & info [ "server"; "s" ] ~doc:"Server to run.")

let requests =
  Arg.(value & opt int 200 & info [ "requests"; "n" ] ~doc:"Benchmark requests before update.")

let conns =
  Arg.(value & opt int 10 & info [ "conns"; "c" ] ~doc:"Long-lived connections held across the update.")

let fail_update =
  Arg.(value & flag & info [ "fail" ] ~doc:"Update to a version that conflicts (rollback demo; httpd).")

let fault_seed =
  Arg.(value & opt (some int) None
       & info [ "fault-seed" ] ~doc:"Arm a seeded fault plan for the update (deterministic).")

let quiesce_deadline_ms =
  Arg.(value & opt (some int) None
       & info [ "quiesce-deadline-ms" ] ~doc:"Quiescence deadline (virtual ms); blowing it rolls back.")

let update_deadline_ms =
  Arg.(value & opt (some int) None
       & info [ "update-deadline-ms" ] ~doc:"Whole-update deadline (virtual ms); blowing it rolls back.")

let precopy =
  Arg.(value & flag
       & info [ "precopy" ] ~doc:"Iterative pre-copy state transfer (sub-window downtime).")

let transfer_workers =
  Arg.(value & opt int 1
       & info [ "transfer-workers" ]
           ~doc:"Sharded parallel state transfer: worker-pool size (downtime is charged as the critical path over shards).")

let fleet =
  Arg.(value & opt int 0
       & info [ "fleet" ]
           ~doc:"Run $(docv) instances behind the simulated balancer and roll the update \
                 out wave by wave via FLEET ROLLOUT (0 = single-instance demo)." ~docv:"N")

let canary =
  Arg.(value & opt int 1
       & info [ "canary" ] ~doc:"Fleet mode: instances in the first (gating) wave.")

let wave =
  Arg.(value & opt int 4
       & info [ "wave" ] ~doc:"Fleet mode: instances per subsequent wave.")

let max_unavailable =
  Arg.(value & opt int 4
       & info [ "max-unavailable" ]
           ~doc:"Fleet mode: bound on instances simultaneously out of rotation.")

let halt_conv =
  Arg.conv ~docv:"POLICY"
    ( (fun s ->
        match Fleet_policy.halt_of_string s with
        | Some h -> Ok h
        | None -> Error (`Msg ("unknown halt policy " ^ s ^ " (halt_only|rollback_updated)"))),
      fun ppf h -> Fmt.string ppf (Fleet_policy.halt_to_string h) )

let halt =
  Arg.(value & opt halt_conv Fleet_policy.Halt_only
       & info [ "halt" ]
           ~doc:"Fleet mode: what a blocking canary verdict does \
                 ($(b,halt_only)|$(b,rollback_updated)).")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Debug logging.")

let cmd =
  Cmd.v
    (Cmd.info "mcr-demo" ~doc:"Live-update a simulated server with MCR")
    Term.(const run $ server $ requests $ conns $ fail_update $ fault_seed
          $ quiesce_deadline_ms $ update_deadline_ms $ precopy $ transfer_workers
          $ fleet $ canary $ wave $ max_unavailable $ halt $ verbose)

let () = exit (Cmd.eval cmd)
